(* Property-based tests on the seeded {!Prop} runner (satellite of the
   fault-injection PR): codec round-trips over the full message grammar —
   including Install carrying random control programs, which the qcheck
   generator in test_ipc.ml leaves out — and the datapath fold engine
   checked against an independent reference implementation on random
   measurement vectors. *)

open Ccp_util
open Ccp_lang

(* --- random messages, programs included --- *)

let gen_float rng =
  (* Finite, sign-mixed, spanning a few magnitudes; exact under the codec. *)
  let m = Rng.float rng 1e6 -. 5e5 in
  if Rng.bool rng then m /. 1024.0 else m

let gen_field_name rng =
  Prop.choose rng [ "rtt_us"; "bytes_acked"; "bytes_lost"; "ecn"; "inflight_bytes" ]

let rec gen_expr rng depth =
  if depth = 0 then
    match Rng.int rng 3 with
    | 0 -> Ast.Const (gen_float rng)
    | 1 -> Ast.Var (Prop.choose rng [ "cwnd"; "mss"; "srtt_us"; "minrtt_us" ])
    | _ -> Ast.Pkt (gen_field_name rng)
  else
    match Rng.int rng 4 with
    | 0 ->
        let op = Prop.choose rng [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ] in
        Ast.Bin (op, gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | 1 -> Ast.Neg (gen_expr rng (depth - 1))
    | 2 ->
        let f = Prop.choose rng [ "min"; "max" ] in
        Ast.Call (f, [ gen_expr rng (depth - 1); gen_expr rng (depth - 1) ])
    | _ -> Ast.Const (gen_float rng)

let gen_program rng =
  let gen_prim rng =
    match Rng.int rng 6 with
    | 0 ->
        let fields = Prop.list rng ~min:1 ~max:4 gen_field_name in
        Ast.Measure (Ast.Vector (List.sort_uniq compare fields))
    | 1 ->
        let bindings rng =
          Prop.list rng ~min:1 ~max:3 (fun rng ->
              (Prop.choose rng [ "acked"; "minrtt"; "cnt" ], gen_expr rng 2))
        in
        Ast.Measure
          (Ast.Fold { Ast.init = bindings rng; update = bindings rng })
    | 2 -> Ast.Rate (gen_expr rng 2)
    | 3 -> Ast.Cwnd (gen_expr rng 2)
    | 4 -> Ast.Wait (gen_expr rng 1)
    | _ -> Ast.Wait_rtts (gen_expr rng 1)
  in
  let prims = Prop.list rng ~min:1 ~max:5 gen_prim @ [ Ast.Report ] in
  Ast.program ~repeat:(Rng.bool rng) prims

let gen_message rng : Ccp_ipc.Message.t =
  let flow = Rng.int rng 1_000 in
  match Rng.int rng 10 with
  | 0 ->
      Ccp_ipc.Message.Ready
        { flow; mss = Prop.int_range rng 500 9000; init_cwnd = Rng.int rng 1_000_000 }
  | 1 ->
      let fields =
        Array.of_list
          (Prop.list rng ~min:0 ~max:6 (fun rng -> (gen_field_name rng, gen_float rng)))
      in
      Ccp_ipc.Message.Report { Ccp_ipc.Message.flow; fields }
  | 2 ->
      let columns = Array.of_list (Prop.list rng ~min:1 ~max:4 gen_field_name) in
      let rows =
        Array.init (Rng.int rng 6) (fun _ ->
            Array.init (Array.length columns) (fun _ -> gen_float rng))
      in
      Ccp_ipc.Message.Report_vector { Ccp_ipc.Message.flow; columns; rows }
  | 3 ->
      Ccp_ipc.Message.Urgent
        {
          Ccp_ipc.Message.flow;
          kind =
            Prop.choose rng
              [ Ccp_ipc.Message.Dup_ack_loss; Ccp_ipc.Message.Timeout; Ccp_ipc.Message.Ecn ];
          cwnd_at_event = Rng.int rng 1_000_000;
          inflight_at_event = Rng.int rng 1_000_000;
        }
  | 4 -> Ccp_ipc.Message.Closed { flow }
  | 5 -> Ccp_ipc.Message.Install { flow; program = gen_program rng }
  | 6 -> Ccp_ipc.Message.Set_cwnd { flow; bytes = Rng.int rng 10_000_000 }
  | 7 -> Ccp_ipc.Message.Set_rate { flow; bytes_per_sec = Float.abs (gen_float rng) }
  | 8 ->
      let verdict =
        if Rng.bool rng then Ccp_ipc.Message.Accepted
        else
          Ccp_ipc.Message.Rejected
            {
              reason = Prop.choose rng Limits.all_reasons;
              detail =
                Prop.choose rng [ ""; "too long"; "Wait(0.05) below floor" ];
            }
      in
      Ccp_ipc.Message.Install_result { flow; verdict }
  | _ ->
      Ccp_ipc.Message.Quarantined
        {
          flow;
          incidents = Rng.int rng 1_000;
          dominant = Prop.choose rng Ccp_ipc.Message.all_incident_kinds;
        }

let prop_codec_roundtrip =
  Prop.test_case ~cases:300 ~name:"codec round-trip (programs included)" ~gen:gen_message
    ~show:Ccp_ipc.Message.describe (fun m ->
      let m' = Ccp_ipc.Codec.decode (Ccp_ipc.Codec.encode m) in
      Prop.require "decode (encode m) = m" (Ccp_ipc.Message.equal m m'))

let prop_encoded_size =
  Prop.test_case ~cases:300 ~name:"encoded_size matches encode" ~gen:gen_message
    ~show:Ccp_ipc.Message.describe (fun m ->
      Prop.check_eq ~what:"encoded_size" string_of_int
        (String.length (Ccp_ipc.Codec.encode m))
        (Ccp_ipc.Codec.encoded_size m))

(* --- fold engine vs a reference implementation --- *)

(* One acked packet's measurements. *)
type pkt = { rtt_us : float; bytes_acked : float }

let show_pkt p = Printf.sprintf "{rtt_us=%g; bytes_acked=%g}" p.rtt_us p.bytes_acked
let show_pkts ps = "[" ^ String.concat "; " (List.map show_pkt ps) ^ "]"

let gen_pkt rng =
  { rtt_us = 100.0 +. Rng.float rng 100_000.0; bytes_acked = float_of_int (Rng.int rng 65_536) }

let flow_env = function
  | "mss" -> Some 1448.0
  | "cwnd" -> Some 14_480.0
  | "minrtt_us" -> Some 20_000.0
  | _ -> None

let pkt_env p = function
  | "rtt_us" -> Some p.rtt_us
  | "bytes_acked" -> Some p.bytes_acked
  | _ -> None

(* The classic report fold (what ccp_agent's Reno/Cubic install), with the
   reference computed by plain OCaml folds over the same vector. The fold
   engine must commit all updates simultaneously, so [prev_rtt] reading
   [last_rtt] in the same update block must see the pre-update value. *)
let fold_def : Ast.fold_def =
  {
    Ast.init =
      [
        ("acked", Ast.Const 0.0);
        ("cnt", Ast.Const 0.0);
        ("minrtt", Ast.Var "minrtt_us");
        ("maxrtt", Ast.Const 0.0);
        ("last_rtt", Ast.Const 0.0);
        ("prev_rtt", Ast.Const 0.0);
      ];
    update =
      [
        ("acked", Ast.Bin (Ast.Add, Ast.Var "acked", Ast.Pkt "bytes_acked"));
        ("cnt", Ast.Bin (Ast.Add, Ast.Var "cnt", Ast.Const 1.0));
        ("minrtt", Ast.Call ("min", [ Ast.Var "minrtt"; Ast.Pkt "rtt_us" ]));
        ("maxrtt", Ast.Call ("max", [ Ast.Var "maxrtt"; Ast.Pkt "rtt_us" ]));
        ("last_rtt", Ast.Pkt "rtt_us");
        ("prev_rtt", Ast.Var "last_rtt");
      ];
  }

let reference pkts =
  let acked = List.fold_left (fun a p -> a +. p.bytes_acked) 0.0 pkts in
  let cnt = float_of_int (List.length pkts) in
  let minrtt = List.fold_left (fun a p -> Float.min a p.rtt_us) 20_000.0 pkts in
  let maxrtt = List.fold_left (fun a p -> Float.max a p.rtt_us) 0.0 pkts in
  let last_rtt = match List.rev pkts with [] -> 0.0 | p :: _ -> p.rtt_us in
  let prev_rtt = match List.rev pkts with _ :: p :: _ -> p.rtt_us | _ -> 0.0 in
  [
    ("acked", acked);
    ("cnt", cnt);
    ("minrtt", minrtt);
    ("maxrtt", maxrtt);
    ("last_rtt", last_rtt);
    ("prev_rtt", prev_rtt);
  ]

let prop_fold_matches_reference =
  Prop.test_case ~cases:200 ~name:"fold engine = reference on random vectors"
    ~gen:(fun rng -> Prop.list rng ~min:0 ~max:40 gen_pkt)
    ~show:show_pkts
    (fun pkts ->
      let fold = Fold.create fold_def ~flow_env in
      List.iter (fun p -> Fold.step fold ~flow_env ~pkt_env:(pkt_env p)) pkts;
      Prop.check_eq ~what:"packet_count" string_of_int (List.length pkts)
        (Fold.packet_count fold);
      List.iter2
        (fun (name, expected) (name', actual) ->
          Prop.check_eq ~what:"field name" Fun.id name name';
          Prop.check_eq ~what:(name ^ " value") string_of_float expected actual)
        (reference pkts) (Fold.fields fold))

let prop_fold_reset_replays_init =
  Prop.test_case ~cases:100 ~name:"fold reset replays init"
    ~gen:(fun rng -> Prop.list rng ~min:1 ~max:20 gen_pkt)
    ~show:show_pkts
    (fun pkts ->
      let fold = Fold.create fold_def ~flow_env in
      List.iter (fun p -> Fold.step fold ~flow_env ~pkt_env:(pkt_env p)) pkts;
      Fold.reset fold ~flow_env;
      Prop.check_eq ~what:"count after reset" string_of_int 0 (Fold.packet_count fold);
      List.iter2
        (fun (name, expected) (_, actual) ->
          Prop.check_eq ~what:(name ^ " after reset") string_of_float expected actual)
        (reference []) (Fold.fields fold))

let suite =
  [
    ( "props.codec",
      [ prop_codec_roundtrip; prop_encoded_size ] );
    ( "props.fold",
      [ prop_fold_matches_reference; prop_fold_reset_replays_init ] );
  ]
