(* The flow-multiplexed control plane: the generation-checked slot pool
   (unit + churn property), the agent's pooled registry (stale handles
   dropped, exhaustion counted), open-loop batching determinism (same
   commands, fewer frames), and the N-member aggregate splitting one
   window across an incast fleet. *)

open Ccp_util
open Ccp_eventsim
open Ccp_ipc
open Ccp_agent

(* --- Flow_table unit tests --- *)

let test_pool_lifecycle () =
  let pool = Flow_table.create ~capacity:3 () in
  Alcotest.(check int) "capacity rounds to pow2" 4 (Flow_table.capacity pool);
  let tok =
    match Flow_table.register pool ~flow:7 "seven" with
    | Ok t -> t
    | Error `Pool_exhausted -> Alcotest.fail "empty pool rejected a registration"
  in
  Alcotest.(check (option string)) "get via token" (Some "seven") (Flow_table.get pool tok);
  Alcotest.(check (option string)) "find via flow id" (Some "seven")
    (Flow_table.find pool ~flow:7);
  Alcotest.(check (option int)) "token_of" (Some tok) (Flow_table.token_of pool ~flow:7);
  Alcotest.(check bool) "is_live" true (Flow_table.is_live pool tok);
  Alcotest.(check int) "live" 1 (Flow_table.live pool);
  Alcotest.(check bool) "release" true (Flow_table.release pool ~flow:7);
  Alcotest.(check bool) "double release" false (Flow_table.release pool ~flow:7);
  Alcotest.(check bool) "token went stale" false (Flow_table.is_live pool tok);
  Alcotest.(check (option string)) "stale deref refused" None (Flow_table.get pool tok);
  let s = Flow_table.stats pool in
  Alcotest.(check int) "stale counted" 1 s.Flow_table.stale_refs;
  Alcotest.(check int) "lifetime registered" 1 s.Flow_table.registered;
  Alcotest.(check int) "lifetime released" 1 s.Flow_table.released;
  (* no_token derefs silently — it is the well-known sentinel. *)
  Alcotest.(check (option string)) "no_token" None (Flow_table.get pool Flow_table.no_token);
  Alcotest.(check int) "no_token not counted stale" 1
    (Flow_table.stats pool).Flow_table.stale_refs

let test_pool_replacement_and_exhaustion () =
  let pool = Flow_table.create ~capacity:2 () in
  let reg flow v =
    match Flow_table.register pool ~flow v with
    | Ok t -> t
    | Error `Pool_exhausted -> Alcotest.fail "unexpected exhaustion"
  in
  let t1 = reg 1 "a" and _t2 = reg 2 "b" in
  (* Full pool: a third flow is refused, structurally. *)
  (match Flow_table.register pool ~flow:3 "c" with
  | Ok _ -> Alcotest.fail "exhausted pool accepted a registration"
  | Error `Pool_exhausted -> ());
  Alcotest.(check int) "rejection counted" 1 (Flow_table.stats pool).Flow_table.rejected;
  (* Re-registering a present flow replaces: never refused by a full
     pool, and the old token goes stale. *)
  let t1' = reg 1 "a2" in
  Alcotest.(check bool) "replacement minted a fresh token" true (t1 <> t1');
  Alcotest.(check (option string)) "old token stale" None (Flow_table.get pool t1);
  Alcotest.(check (option string)) "new token live" (Some "a2") (Flow_table.get pool t1');
  Flow_table.clear pool;
  Alcotest.(check int) "clear releases all" 0 (Flow_table.live pool);
  Alcotest.(check (option string)) "clear staled tokens" None (Flow_table.get pool t1')

let test_pool_iter_order () =
  let pool = Flow_table.create ~capacity:4 () in
  List.iter
    (fun f -> ignore (Flow_table.register pool ~flow:f (string_of_int f)))
    [ 30; 10; 20 ];
  ignore (Flow_table.release pool ~flow:10 : bool);
  ignore (Flow_table.register pool ~flow:40 "40");
  (* Slot order, not hash order: 10's freed slot was reused by 40. *)
  let seen = ref [] in
  Flow_table.iter pool (fun flow _ -> seen := flow :: !seen);
  Alcotest.(check (list int)) "deterministic slot order" [ 30; 40; 20 ] (List.rev !seen);
  Alcotest.(check int) "fold agrees" 3
    (Flow_table.fold pool ~init:0 ~f:(fun _ _ acc -> acc + 1))

(* --- churn property: the pool against a model registry --- *)

type churn_op = Op_register of int | Op_release of int | Op_deref of int

let show_churn ops =
  String.concat "; "
    (List.map
       (function
         | Op_register f -> Printf.sprintf "reg %d" f
         | Op_release f -> Printf.sprintf "rel %d" f
         | Op_deref f -> Printf.sprintf "deref %d" f)
       ops)

let gen_churn rng =
  Prop.list rng ~min:1 ~max:80 (fun rng ->
      let flow = Rng.int rng 8 in
      match Rng.int rng 4 with
      | 0 | 1 -> Op_register flow
      | 2 -> Op_release flow
      | _ -> Op_deref flow)

(* Invariants, against a hashtable model: a live slot is never handed
   out twice; stale tokens are counted, never honored; exhaustion is a
   structured rejection exactly when the pool is full of other flows;
   and the stats ledger balances. *)
let prop_pool_churn ops =
  let capacity = 4 in
  let pool = Flow_table.create ~capacity () in
  let model : (int, Flow_table.token * int) Hashtbl.t = Hashtbl.create 8 in
  let dead = ref [] in
  let stale_derefs = ref 0 in
  List.iteri
    (fun i op ->
      match op with
      | Op_register flow -> (
        let was = Hashtbl.find_opt model flow in
        match Flow_table.register pool ~flow i with
        | Ok tok ->
          (match was with
          | Some (old, _) ->
            dead := old :: !dead;
            Prop.require "replacement mints a fresh token" (old <> tok)
          | None -> ());
          Hashtbl.remove model flow;
          Hashtbl.iter
            (fun _ (live_tok, _) ->
              Prop.require "live slot never handed out twice" (live_tok <> tok))
            model;
          Hashtbl.replace model flow (tok, i)
        | Error `Pool_exhausted ->
          (* Replacement releases first, so only a genuinely new flow
             can see a full pool. *)
          Prop.require "exhaustion only when full of other flows"
            (was = None && Hashtbl.length model = capacity))
      | Op_release flow ->
        let was = Hashtbl.find_opt model flow in
        let released = Flow_table.release pool ~flow in
        Prop.check_eq ~what:"release reflects registry" string_of_bool (was <> None)
          released;
        (match was with
        | Some (tok, _) ->
          dead := tok :: !dead;
          Hashtbl.remove model flow
        | None -> ())
      | Op_deref flow ->
        (match Hashtbl.find_opt model flow with
        | Some (tok, v) -> (
          match Flow_table.get pool tok with
          | Some v' -> Prop.check_eq ~what:"live deref value" string_of_int v v'
          | None -> Prop.fail "live token failed the generation check")
        | None -> ());
        (match !dead with
        | tok :: _ ->
          incr stale_derefs;
          (match Flow_table.get pool tok with
          | None -> ()
          | Some _ -> Prop.fail "stale token honored")
        | [] -> ()))
    ops;
  let s = Flow_table.stats pool in
  Prop.check_eq ~what:"live count" string_of_int (Hashtbl.length model) s.Flow_table.live;
  Prop.check_eq ~what:"ledger: registered - released = live" string_of_int
    s.Flow_table.live
    (s.Flow_table.registered - s.Flow_table.released);
  Prop.check_eq ~what:"stale refs counted exactly" string_of_int !stale_derefs
    s.Flow_table.stale_refs

(* --- the agent's pooled registry --- *)

let recorded_handles : Algorithm.handle list ref = ref []

let sink_algorithm : Algorithm.t =
  {
    Algorithm.name = "test-sink";
    make =
      (fun handle ->
        recorded_handles := handle :: !recorded_handles;
        Algorithm.no_op_handlers);
  }

let make_agent ?flow_pool () =
  recorded_handles := [];
  let sim = Sim.create () in
  let channel =
    Channel.create ~sim ~latency:(Latency_model.Constant (Time_ns.us 20)) ()
  in
  let to_datapath = ref [] in
  Channel.on_receive channel Channel.Datapath_end (fun msg ->
      to_datapath := msg :: !to_datapath);
  let agent = Agent.create ~sim ~channel ~choose:(fun _ -> sink_algorithm) ?flow_pool () in
  (sim, channel, agent, to_datapath)

let ready flow = Message.Ready { flow; mss = 1448; init_cwnd = 14_480 }

let test_agent_pool_exhaustion () =
  let sim, channel, agent, _ = make_agent ~flow_pool:2 () in
  List.iter (fun f -> Channel.send channel ~from:Channel.Datapath_end (ready f)) [ 1; 2; 3 ];
  Sim.run sim;
  Alcotest.(check int) "pool-sized fleet registered" 2 (Agent.flow_count agent);
  Alcotest.(check int) "overflow refused, counted" 1 (Agent.registrations_rejected agent);
  Alcotest.(check (option string)) "refused flow not served" None
    (Agent.algorithm_name agent ~flow:3);
  (* Teardown frees the slot; the refused flow's watchdog re-handshake
     then succeeds. *)
  Channel.send channel ~from:Channel.Datapath_end (Message.Closed { flow = 1 });
  Channel.send channel ~from:Channel.Datapath_end (ready 3);
  Sim.run sim;
  Alcotest.(check int) "slot recycled" 2 (Agent.flow_count agent);
  Alcotest.(check (option string)) "late flow served after churn" (Some "test-sink")
    (Agent.algorithm_name agent ~flow:3);
  match Agent.pool_stats agent with
  | None -> Alcotest.fail "pooled agent reports no pool stats"
  | Some s -> Alcotest.(check int) "pool ledger" 1 s.Flow_table.rejected

let test_agent_stale_handle_dropped () =
  let sim, channel, agent, to_datapath = make_agent ~flow_pool:4 () in
  Channel.send channel ~from:Channel.Datapath_end (ready 1);
  Sim.run sim;
  let handle = match !recorded_handles with [ h ] -> h | _ -> Alcotest.fail "no handle" in
  handle.Algorithm.set_cwnd 20_000;
  Sim.run sim;
  Alcotest.(check int) "live handle acts" 1 (List.length !to_datapath);
  Channel.send channel ~from:Channel.Datapath_end (Message.Closed { flow = 1 });
  Sim.run sim;
  (* The algorithm closure outlived its flow: its actions must be
     dropped and counted, not applied to whoever reuses the slot. *)
  Channel.send channel ~from:Channel.Datapath_end (ready 2);
  Sim.run sim;
  handle.Algorithm.set_cwnd 99_999;
  handle.Algorithm.set_rate 1e6;
  Sim.run sim;
  Alcotest.(check int) "stale actions dropped" 1 (List.length !to_datapath);
  (match Agent.pool_stats agent with
  | Some s -> Alcotest.(check bool) "stale refs counted" true (s.Flow_table.stale_refs >= 2)
  | None -> Alcotest.fail "no pool stats");
  (* The unpooled agent is the permissive original: same sequence, the
     stale handle still sends (flow 2's datapath state absorbs it). *)
  let sim, channel, _, to_datapath = make_agent () in
  Channel.send channel ~from:Channel.Datapath_end (ready 1);
  Sim.run sim;
  let handle = match !recorded_handles with [ h ] -> h | _ -> Alcotest.fail "no handle" in
  Channel.send channel ~from:Channel.Datapath_end (Message.Closed { flow = 1 });
  Sim.run sim;
  handle.Algorithm.set_cwnd 99_999;
  Sim.run sim;
  Alcotest.(check int) "hashed registry stays permissive" 1 (List.length !to_datapath)

let test_agent_reset_clears_pool () =
  let sim, channel, agent, _ = make_agent ~flow_pool:2 () in
  List.iter (fun f -> Channel.send channel ~from:Channel.Datapath_end (ready f)) [ 1; 2 ];
  Sim.run sim;
  Agent.reset agent;
  Alcotest.(check int) "reset empties the registry" 0 (Agent.flow_count agent);
  (* Every slot is free again: a full fleet re-registers cleanly. *)
  List.iter (fun f -> Channel.send channel ~from:Channel.Datapath_end (ready f)) [ 3; 4 ];
  Sim.run sim;
  Alcotest.(check int) "fresh fleet after reset" 2 (Agent.flow_count agent);
  Alcotest.(check int) "no spurious rejections" 0 (Agent.registrations_rejected agent)

(* --- open-loop batching determinism --- *)

(* A deterministic echo algorithm: each report sets cwnd to a value
   computed from the report alone. Feeding the same report script with
   batching on and off must yield the identical command sequence at the
   datapath end — batching may only change the wire framing. *)
let echo_algorithm : Algorithm.t =
  {
    Algorithm.name = "test-echo";
    make =
      (fun handle ->
        {
          Algorithm.no_op_handlers with
          Algorithm.on_report =
            (fun r ->
              handle.Algorithm.set_cwnd
                (int_of_float (Algorithm.field_exn r "acked") * 2));
        });
  }

let run_echo_script ~batching =
  let sim = Sim.create () in
  let channel =
    Channel.create ~sim ~latency:(Latency_model.Constant (Time_ns.us 20))
      ?batching:
        (if batching then
           Some
             {
               Channel.max_count = 8;
               max_bytes = 1 lsl 16;
               deadline = Time_ns.us 200;
             }
         else None)
      ()
  in
  let commands = ref [] in
  Channel.on_receive channel Channel.Datapath_end (fun msg ->
      match msg with
      | Message.Set_cwnd { flow; bytes } -> commands := (flow, bytes) :: !commands
      | _ -> ());
  let _agent = Agent.create ~sim ~channel ~choose:(fun _ -> echo_algorithm) () in
  for f = 0 to 3 do
    Channel.send channel ~from:Channel.Datapath_end (ready f)
  done;
  Sim.run sim;
  for i = 1 to 100 do
    Channel.send channel ~from:Channel.Datapath_end
      (Message.Report { flow = i mod 4; fields = [| ("acked", float_of_int (100 * i)) |] });
    if i mod 10 = 0 then Sim.run sim
  done;
  Channel.flush channel;
  Sim.run sim;
  (List.rev !commands, Channel.messages_sent channel Channel.Datapath_end,
   Channel.batches_sent channel)

let test_batching_open_loop_determinism () =
  let on, frames_on, batches_on = run_echo_script ~batching:true in
  let off, frames_off, batches_off = run_echo_script ~batching:false in
  Alcotest.(check (list (pair int int))) "identical command sequence" off on;
  Alcotest.(check int) "100 commands" 100 (List.length on);
  Alcotest.(check int) "unbatched never frames" 0 batches_off;
  Alcotest.(check bool) "batching coalesced frames" true (batches_on > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fewer wire frames batched (%d) than unbatched (%d)" frames_on
       frames_off)
    true (frames_on < frames_off)

(* --- the N-member aggregate on an incast fleet --- *)

let share_of (p : Ccp_lang.Ast.program) =
  List.find_map
    (function
      | Ccp_lang.Ast.Cwnd (Ccp_lang.Ast.Const f) -> Some (int_of_float f)
      | _ -> None)
    p.Ccp_lang.Ast.prims

(* Latest install per flow (the capture list is newest-first). *)
let latest_shares captured =
  let tbl = Hashtbl.create 8 in
  List.iter
    (function
      | Message.Install { flow; program } ->
        if not (Hashtbl.mem tbl flow) then (
          match share_of program with
          | Some s -> Hashtbl.add tbl flow s
          | None -> ())
      | _ -> ())
    captured;
  tbl

let make_aggregate_fleet ?initial_segments ?(init_cwnd = 14_480) ~n () =
  let sim = Sim.create () in
  let channel =
    Channel.create ~sim ~latency:(Latency_model.Constant (Time_ns.us 20)) ()
  in
  let captured = ref [] in
  Channel.on_receive channel Channel.Datapath_end (fun msg -> captured := msg :: !captured);
  let agg = Ccp_algorithms.Ccp_aggregate.create ?initial_segments () in
  let algo = Ccp_algorithms.Ccp_aggregate.algorithm agg in
  let _agent =
    Agent.create ~sim ~channel ~choose:(fun _ -> algo) ~flow_pool:(max 16 n) ()
  in
  for f = 1 to n do
    Channel.send channel ~from:Channel.Datapath_end
      (Message.Ready { flow = f; mss = 1448; init_cwnd })
  done;
  Sim.run sim;
  (sim, channel, agg, captured)

let check_conservation ~what agg ~n captured =
  let shares = latest_shares !captured in
  Alcotest.(check int) (what ^ ": every member programmed") n (Hashtbl.length shares);
  let cwnd = Ccp_algorithms.Ccp_aggregate.aggregate_cwnd agg in
  let equal_split = max 1448 (cwnd / n) in
  let sum = Hashtbl.fold (fun _ s acc -> acc + s) shares 0 in
  Hashtbl.iter
    (fun flow s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: flow %d share %d within one segment of split %d" what flow s
           equal_split)
        true
        (abs (s - equal_split) <= 1448))
    shares;
  (* Window conserved across reprogramming: the shares re-sum to the
     aggregate (integer division slack at most one segment per member),
     except under the per-member floor, where the floor wins. *)
  if cwnd >= n * 1448 then
    Alcotest.(check bool)
      (Printf.sprintf "%s: shares %d re-sum to aggregate %d" what sum cwnd)
      true
      (sum <= cwnd && cwnd - sum <= n * 1448)
  else Alcotest.(check int) (what ^ ": floored shares") (n * 1448) sum

let test_aggregate_membership_and_split () =
  let n = 8 in
  let sim, channel, agg, captured = make_aggregate_fleet ~n () in
  Alcotest.(check int) "all members joined" n
    (Ccp_algorithms.Ccp_aggregate.member_count agg);
  check_conservation ~what:"after join" agg ~n captured;
  (* Additive increase on a report reprograms the whole fleet with the
     window still conserved. *)
  let before = Ccp_algorithms.Ccp_aggregate.aggregate_cwnd agg in
  Channel.send channel ~from:Channel.Datapath_end
    (Message.Report { flow = 3; fields = [| ("acked", 1448.0) |] });
  Sim.run sim;
  Alcotest.(check bool) "additive increase grew the aggregate" true
    (Ccp_algorithms.Ccp_aggregate.aggregate_cwnd agg > before);
  check_conservation ~what:"after increase" agg ~n captured

let test_aggregate_floor_and_decrease () =
  let n = 8 in
  (* Aggregate smaller than n segments: every member gets the one-MSS
     floor rather than a sub-segment share. *)
  let sim, channel, agg, captured =
    make_aggregate_fleet ~initial_segments:2 ~init_cwnd:2896 ~n ()
  in
  Alcotest.(check int) "tiny aggregate" 2896
    (Ccp_algorithms.Ccp_aggregate.aggregate_cwnd agg);
  check_conservation ~what:"floored split" agg ~n captured;
  (* Multiplicative decrease fires once per guessed RTT, not once per
     member loss: two urgents inside the window halve only once. A big
     aggregate keeps the halving above the 2-segments-per-member floor,
     so a second (wrong) halving would be visible. *)
  let sim2, channel2, agg2, captured2 = make_aggregate_fleet ~initial_segments:40 ~n () in
  ignore (sim : Sim.t);
  ignore (channel : Channel.t);
  let urgent flow =
    Channel.send channel2 ~from:Channel.Datapath_end
      (Message.Urgent
         { flow; kind = Message.Dup_ack_loss; cwnd_at_event = 1448; inflight_at_event = 0 })
  in
  let before = Ccp_algorithms.Ccp_aggregate.aggregate_cwnd agg2 in
  Sim.schedule sim2 ~at:(Time_ns.ms 20) (fun () -> urgent 1) |> ignore;
  Sim.schedule sim2 ~at:(Time_ns.ms 21) (fun () -> urgent 2) |> ignore;
  Sim.run sim2;
  let after = Ccp_algorithms.Ccp_aggregate.aggregate_cwnd agg2 in
  Alcotest.(check int) "one decrease for one loss event"
    (max (2 * 1448 * n) (before / 2))
    after;
  Alcotest.(check bool) "halving dominated the per-member floor" true
    (before / 2 > 2 * 1448 * n);
  check_conservation ~what:"after decrease" agg2 ~n:8 captured2

let suite =
  [
    ( "scale.pool",
      [
        Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
        Alcotest.test_case "replacement and exhaustion" `Quick
          test_pool_replacement_and_exhaustion;
        Alcotest.test_case "deterministic iteration" `Quick test_pool_iter_order;
        Prop.test_case ~cases:200 ~name:"churn invariants vs model registry"
          ~gen:gen_churn ~show:show_churn prop_pool_churn;
      ] );
    ( "scale.agent",
      [
        Alcotest.test_case "pool exhaustion refuses, churn recycles" `Quick
          test_agent_pool_exhaustion;
        Alcotest.test_case "stale handle dropped and counted" `Quick
          test_agent_stale_handle_dropped;
        Alcotest.test_case "reset clears the pool" `Quick test_agent_reset_clears_pool;
      ] );
    ( "scale.batching",
      [
        Alcotest.test_case "open-loop determinism" `Quick
          test_batching_open_loop_determinism;
      ] );
    ( "scale.aggregate",
      [
        Alcotest.test_case "membership and equal split" `Quick
          test_aggregate_membership_and_split;
        Alcotest.test_case "floor and single decrease" `Quick
          test_aggregate_floor_and_decrease;
      ] );
  ]
