(* Aggregate test runner: one alcotest binary over all suites. *)

let () =
  Alcotest.run "ccp"
    (Test_util.suite @ Test_eventsim.suite @ Test_net.suite @ Test_lang.suite
   @ Test_ipc.suite @ Test_datapath.suite @ Test_agent.suite @ Test_algorithms.suite
   @ Test_core.suite @ Test_extensions.suite @ Test_props.suite @ Test_faults.suite
   @ Test_guard.suite @ Test_compile.suite @ Test_integration.suite
   @ Test_obs.suite @ Test_fidelity.suite @ Test_trace.suite @ Test_robustness.suite
   @ Test_chaos.suite @ Test_scale.suite @ Test_incast.suite @ Test_telemetry.suite)
