(* Install-time compilation tests (the fast-path PR): compile-time
   rejection of name/arity errors as structured [Install_result]
   refusals, bit-identical semantics against the {!Eval}/{!Fold}
   interpreter via the {!Compile.equivalent} differential harness
   (seeded property, adversarial generators included), and the
   headline perf claim's precondition — a zero-allocation per-ACK
   fold step, asserted with [Gc.minor_words]. *)

open Ccp_util
open Ccp_eventsim
open Ccp_datapath
open Ccp_lang

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- compile-time rejection of what the interpreter only hits at run time --- *)

let check_compile_error what ~sub p =
  match Compile.compile p with
  | Ok _ -> Alcotest.failf "%s: compiled, expected an error" what
  | Error msg ->
      if not (contains ~sub msg) then
        Alcotest.failf "%s: error %S does not mention %S" what msg sub

let wait_report = [ Ast.Wait_rtts (Ast.Const 1.0); Ast.Report ]

let fold_prog ~init ~update rest =
  Ast.program (Ast.Measure (Ast.Fold { Ast.init; update }) :: rest)

let test_compile_rejects_bad_names () =
  check_compile_error "unknown variable" ~sub:"unknown variable 'bogus'"
    (Ast.program (Ast.Cwnd (Ast.Var "bogus") :: wait_report));
  check_compile_error "pkt outside fold" ~sub:"only available inside fold updates"
    (Ast.program (Ast.Cwnd (Ast.Pkt "rtt_us") :: wait_report));
  check_compile_error "unknown packet field" ~sub:"unknown packet field 'rt_us'"
    (fold_prog
       ~init:[ ("acked", Ast.Const 0.0) ]
       ~update:[ ("acked", Ast.Pkt "rt_us") ]
       wait_report);
  check_compile_error "unknown builtin" ~sub:"unknown function 'frob'"
    (Ast.program (Ast.Cwnd (Ast.Call ("frob", [ Ast.Const 1.0 ])) :: wait_report));
  check_compile_error "wrong arity" ~sub:"expects 2 arguments, got 1"
    (Ast.program (Ast.Cwnd (Ast.Call ("min", [ Ast.Const 1.0 ])) :: wait_report));
  check_compile_error "duplicate fold field" ~sub:"duplicate field 'x'"
    (fold_prog
       ~init:[ ("x", Ast.Const 0.0); ("x", Ast.Const 1.0) ]
       ~update:[ ("x", Ast.Var "x") ]
       wait_report);
  check_compile_error "undeclared update target" ~sub:"undeclared field 'y'"
    (fold_prog
       ~init:[ ("x", Ast.Const 0.0) ]
       ~update:[ ("y", Ast.Const 1.0) ]
       wait_report);
  check_compile_error "unknown vector column" ~sub:"unknown packet field 'nope'"
    (Ast.program (Ast.Measure (Ast.Vector [ "rtt_us"; "nope" ]) :: wait_report))

(* --- the classic report fold, compiled vs interpreted --- *)

let classic_fold =
  Ast.Fold
    {
      Ast.init =
        [
          ("acked", Ast.Const 0.0);
          ("cnt", Ast.Const 0.0);
          ("minrtt", Ast.Var "minrtt_us");
          ("maxrtt", Ast.Const 0.0);
          ("last_rtt", Ast.Const 0.0);
          ("prev_rtt", Ast.Const 0.0);
        ];
      update =
        [
          ("acked", Ast.Bin (Ast.Add, Ast.Var "acked", Ast.Pkt "bytes_acked"));
          ("cnt", Ast.Bin (Ast.Add, Ast.Var "cnt", Ast.Const 1.0));
          ("minrtt", Ast.Call ("min", [ Ast.Var "minrtt"; Ast.Pkt "rtt_us" ]));
          ("maxrtt", Ast.Call ("max", [ Ast.Var "maxrtt"; Ast.Pkt "rtt_us" ]));
          ("last_rtt", Ast.Pkt "rtt_us");
          ("prev_rtt", Ast.Var "last_rtt");
        ];
    }

let classic_program =
  Ast.program ~repeat:true
    [
      Ast.Measure classic_fold;
      Ast.Cwnd (Ast.Bin (Ast.Add, Ast.Var "cwnd", Ast.Bin (Ast.Mul, Ast.Const 2.0, Ast.Var "mss")));
      Ast.Wait_rtts (Ast.Const 1.0);
      Ast.Report;
    ]

let deterministic_flow =
  (* One distinctive finite value per flow slot. *)
  Array.init Compile.flow_var_count (fun i -> 1000.0 +. (137.0 *. float_of_int i))

let test_classic_fold_equivalent () =
  let pkts =
    Array.init 25 (fun k ->
        Array.init Compile.pkt_field_count (fun i ->
            float_of_int (((k * 7919) + (i * 104729)) mod 100_000)))
  in
  match Compile.equivalent classic_program ~flow:deterministic_flow ~pkts with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "classic fold diverged: %s" msg

(* --- every well-typed program compiles --- *)

let prop_well_typed_compiles =
  Prop.test_case ~cases:200 ~name:"every admitted program compiles"
    ~gen:Ast_gen.well_typed_program ~show:Pretty.program_to_string (fun p ->
      match Compile.compile p with
      | Ok cp -> ignore (Compile.machine_for cp)
      | Error msg -> Prop.fail "admitted program failed to compile: %s" msg)

(* --- seeded differential property: compiled = interpreted, incidents included --- *)

type diff_case = { program : Ast.program; flow : float array; pkts : float array array }

let show_diff d =
  Printf.sprintf "%s\nflow=[%s]\n%d packets" (Pretty.program_to_string d.program)
    (String.concat "; " (Array.to_list (Array.map string_of_float d.flow)))
    (Array.length d.pkts)

let nasty = [| 0.0; -0.0; -1.0; 1e300; -1e300; 4.9e-324; infinity; neg_infinity; nan |]

let gen_cell rng =
  match Rng.int rng 8 with
  | 0 -> nasty.(Rng.int rng (Array.length nasty))
  | 1 -> -.Rng.float rng 1e6
  | 2 -> float_of_int (Rng.int rng 65_536)
  | _ -> Rng.float rng 1e7

let gen_diff rng =
  let program =
    (* Half adversarial (unknown names, wrong arities, overflow constants),
       half guaranteed-admissible. *)
    if Rng.bool rng then Ast_gen.program rng else Ast_gen.well_typed_program rng
  in
  let flow = Array.init Compile.flow_var_count (fun _ -> gen_cell rng) in
  let pkts =
    Array.init (Rng.int rng 31) (fun _ ->
        Array.init Compile.pkt_field_count (fun _ -> gen_cell rng))
  in
  { program; flow; pkts }

let prop_compiled_equals_interpreted =
  Prop.test_case ~cases:1000 ~name:"compiled = interpreted (differential)" ~gen:gen_diff
    ~show:show_diff (fun d ->
      match Compile.compile d.program with
      | Error msg -> (
          (* Compile errors must be a subset of typecheck errors: anything
             the compiler refuses, admission already refuses. *)
          match Typecheck.check d.program with
          | Error _ -> ()
          | Ok _ -> Prop.fail "compile rejected (%s) but typecheck accepted" msg)
      | Ok _ -> (
          match Compile.equivalent d.program ~flow:d.flow ~pkts:d.pkts with
          | Ok () -> ()
          | Error msg -> Prop.fail "divergence: %s" msg))

(* --- the per-ACK step allocates nothing --- *)

let test_fold_step_allocation_free () =
  let cp = Compile.compile_exn classic_program in
  let m = Compile.machine_for cp in
  Array.blit deterministic_flow 0 m.Compile.flow 0 Compile.flow_var_count;
  let plan =
    match
      Array.to_list cp.Compile.prims
      |> List.filter_map (function Compile.Measure_fold p -> Some p | _ -> None)
    with
    | [ p ] -> p
    | _ -> Alcotest.fail "expected exactly one fold"
  in
  let fold = Compile.Fold.create plan ~m in
  let incidents = Eval.fresh_counter () in
  m.Compile.pkt.(Compile.pkt_index_exn "rtt_us") <- 10_233.0;
  m.Compile.pkt.(Compile.pkt_index_exn "bytes_acked") <- 1448.0;
  for _ = 1 to 1_000 do
    Compile.Fold.step fold ~m ~incidents
  done;
  Gc.full_major ();
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Compile.Fold.step fold ~m ~incidents
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 100.0 then
    Alcotest.failf "fold step allocated: %.0f minor words over 10k steps" delta;
  Alcotest.(check int) "packets counted" 11_000 (Compile.Fold.packet_count fold)

(* --- compilation is part of admission, even with validation off --- *)

let fake_ctl sim ~flow =
  let cwnd = ref 14_480 and rate = ref 0.0 in
  ({
     Congestion_iface.flow;
     mss = 1448;
     now = (fun () -> Sim.now sim);
     get_cwnd = (fun () -> !cwnd);
     set_cwnd = (fun b -> cwnd := b);
     get_rate = (fun () -> !rate);
     set_rate = (fun r -> rate := r);
     srtt = (fun () -> Some (Time_ns.ms 10));
     latest_rtt = (fun () -> Some (Time_ns.ms 11));
     min_rtt = (fun () -> Some (Time_ns.ms 10));
     inflight = (fun () -> 0);
     send_rate_ewma = (fun () -> None);
     delivery_rate_ewma = (fun () -> None);
   }
    : Congestion_iface.ctl)

let test_unresolvable_install_rejected_without_validation () =
  (* [validate_installs = false] turns off the static admission pass, but
     compilation still happens — an unresolvable program must come back as
     a structured rejection, not install a program that would fault
     per-packet. *)
  let config = { Ccp_ext.default_config with Ccp_ext.validate_installs = false } in
  let sim = Sim.create () in
  let channel =
    Ccp_ipc.Channel.create ~sim ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 20)) ()
  in
  let to_agent = ref [] in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun m ->
      to_agent := m :: !to_agent);
  let ext = Ccp_ext.create ~sim ~channel ~config () in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init (fake_ctl sim ~flow:1);
  Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
    (Ccp_ipc.Message.Install
       { flow = 1; program = Ast.program (Ast.Cwnd (Ast.Var "bogus") :: wait_report) });
  Sim.run ~until:(Time_ns.ms 1) sim;
  Alcotest.(check int) "rejected count" 1 (Ccp_ext.installs_rejected ext);
  Alcotest.(check bool) "nothing installed" true
    (Ccp_ext.installed_program ext ~flow:1 = None);
  let verdicts =
    List.filter_map
      (function Ccp_ipc.Message.Install_result { verdict; _ } -> Some verdict | _ -> None)
      (List.rev !to_agent)
  in
  match verdicts with
  | [ Ccp_ipc.Message.Rejected { reason = Limits.Invalid_program; detail } ] ->
      Alcotest.(check bool) "detail names the variable" true
        (contains ~sub:"unknown variable 'bogus'" detail)
  | [ Ccp_ipc.Message.Rejected { reason; _ } ] ->
      Alcotest.failf "wrong reason: %s" (Limits.reason_to_string reason)
  | vs -> Alcotest.failf "expected one rejection, got %d verdicts" (List.length vs)

let suite =
  [
    ( "compile",
      [
        Alcotest.test_case "name/arity errors caught at compile time" `Quick
          test_compile_rejects_bad_names;
        Alcotest.test_case "classic fold: compiled = interpreted" `Quick
          test_classic_fold_equivalent;
        Alcotest.test_case "fold step allocates nothing" `Quick
          test_fold_step_allocation_free;
        Alcotest.test_case "compile gates install even without validation" `Quick
          test_unresolvable_install_rejected_without_validation;
        prop_well_typed_compiles;
      ] );
    ("compile.differential", [ prop_compiled_equals_interpreted ]);
  ]
