(* Causal span tracing (tentpole of the observability PR): the Chrome
   trace export of a fixed seed-42 scenario must stay byte-identical
   build over build, and the tracer's span accounting must balance under
   arbitrary fault plans — every span started is eventually finalized
   with exactly one disposition or still live, and the slot pool never
   leaks. *)

open Ccp_util
open Ccp_core

(* --- the golden Chrome trace --- *)

(* Same lossy, spiky seed-42 scenario as the fidelity golden trace, but
   with the tracer on and a frozen wall clock, so stage costs are 0 and
   the export depends only on simulation time. *)
let traced_run () =
  let obs = Ccp_obs.Obs.create ~tracer:true ~clock:(fun () -> 0.0) () in
  let config =
    Experiment.default_config ~rate_bps:48e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 2)
  in
  let config =
    {
      config with
      Experiment.seed = 42;
      flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_reno.create ())) ];
      faults =
        Ccp_ipc.Fault_plan.make ~drop_probability:0.1
          ~spike:{ Ccp_ipc.Fault_plan.probability = 0.05; extra = Time_ns.ms 2 }
          ();
      obs = Some obs;
    }
  in
  ignore (Experiment.run config : Experiment.result);
  obs

let chrome_string obs =
  let json = Ccp_obs.Tracer.chrome_of_recorder (Ccp_obs.Obs.recorder_exn obs) in
  (match Ccp_obs.Tracer.validate_chrome json with
  | Ok 0 -> Alcotest.fail "traced run exported no events"
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome export fails its own validator: %s" e);
  Ccp_obs.Json.to_string json

(* [dune runtest] runs in [_build/default/test]; [dune exec] from the
   project root. Accept both, like the fidelity golden. *)
let golden_path () =
  if Sys.file_exists "golden_chrome.expected" then "golden_chrome.expected"
  else "test/golden_chrome.expected"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let first_divergence a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let test_golden_chrome () =
  let actual = chrome_string (traced_run ()) ^ "\n" in
  (* In-process determinism first: a second identical run, same bytes. *)
  let again = chrome_string (traced_run ()) ^ "\n" in
  if not (String.equal actual again) then
    Alcotest.failf "chrome export nondeterministic within one process (diverges at byte %d)"
      (first_divergence actual again);
  (* Cross-build determinism: the checked-in golden file. Regenerate with
     CCP_REGEN_CHROME=path/to/golden_chrome.expected after an intentional
     export-format change. *)
  match Sys.getenv_opt "CCP_REGEN_CHROME" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc actual;
    close_out oc;
    Printf.printf "regenerated %s (%d bytes)\n" path (String.length actual)
  | None ->
    let expected = read_file (golden_path ()) in
    if not (String.equal expected actual) then begin
      let i = first_divergence expected actual in
      let ctx s = String.sub s (max 0 (i - 40)) (min 80 (String.length s - max 0 (i - 40))) in
      Alcotest.failf
        "golden chrome trace diverges at byte %d (of %d expected / %d actual):\n\
        \  expected ...%s...\n\
        \  actual   ...%s..." i (String.length expected) (String.length actual)
        (ctx expected) (ctx actual)
    end

(* --- span accounting balances under arbitrary faults --- *)

type plan_case = { seed : int; plan : Ccp_ipc.Fault_plan.t }

let gen_plan rng =
  let prob p = if Rng.bool rng then 0.0 else Rng.float rng p in
  let spike =
    if Rng.bool rng then None
    else
      Some
        {
          Ccp_ipc.Fault_plan.probability = Rng.float rng 0.2;
          extra = Time_ns.ms (Prop.int_range rng 1 4);
        }
  in
  let reorder =
    if Rng.bool rng then None
    else
      Some
        {
          Ccp_ipc.Fault_plan.probability = Rng.float rng 0.3;
          window = Time_ns.ms (Prop.int_range rng 1 5);
        }
  in
  let plan =
    Ccp_ipc.Fault_plan.make ~drop_probability:(prob 0.3) ~duplicate_probability:(prob 0.2)
      ?spike ?reorder ()
  in
  let plan =
    if Rng.bool rng then plan
    else Ccp_ipc.Fault_plan.crash ~at:(Time_ns.ms 300) ~restart:(Time_ns.ms 650) plan
  in
  { seed = Rng.int rng 10_000; plan }

let show_plan { seed; plan } =
  Printf.sprintf "seed=%d faults=%s" seed (Ccp_ipc.Fault_plan.describe plan)

let prop_span_accounting { seed; plan } =
  let obs = Ccp_obs.Obs.create ~tracer:true ~tracer_capacity:512 ~clock:(fun () -> 0.0) () in
  let config =
    Experiment.default_config ~rate_bps:24e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 1)
  in
  let config =
    {
      config with
      Experiment.seed;
      flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_reno.create ())) ];
      faults = plan;
      (* With the fallback armed, a dropped Ready/Install handshake is
         re-probed, so every faulty run still starts spans. *)
      datapath =
        {
          Ccp_datapath.Ccp_ext.default_config with
          fallback = Some (Scenarios.Degraded.reno_fallback ());
        };
      obs = Some obs;
    }
  in
  ignore (Experiment.run config : Experiment.result);
  let tr = Ccp_obs.Obs.tracer_exn obs in
  let st = Ccp_obs.Tracer.stats tr in
  Prop.require "some spans were started" (st.Ccp_obs.Tracer.started > 0);
  Prop.check_eq ~what:"started = finalized + live" string_of_int st.Ccp_obs.Tracer.started
    (st.Ccp_obs.Tracer.actuated + st.Ccp_obs.Tracer.no_action + st.Ccp_obs.Tracer.rejected
   + st.Ccp_obs.Tracer.orphaned + st.Ccp_obs.Tracer.shed + st.Ccp_obs.Tracer.live);
  Prop.check_eq ~what:"free slots = capacity - live" string_of_int
    (Ccp_obs.Tracer.pool_capacity tr - st.Ccp_obs.Tracer.live)
    (Ccp_obs.Tracer.free_slots tr);
  (* Faulty runs must not leak pool slots: everything still live at sim
     end is bounded by what can actually be in flight, not by history. *)
  Prop.require "pool not exhausted by leaked spans"
    (st.Ccp_obs.Tracer.live < Ccp_obs.Tracer.pool_capacity tr / 2);
  let r = Ccp_obs.Obs.recorder_exn obs in
  Prop.check_eq ~what:"recorder: recorded = held + dropped" string_of_int
    (Ccp_obs.Recorder.recorded r)
    (Ccp_obs.Recorder.length r + Ccp_obs.Recorder.dropped r)

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "golden chrome trace is byte-stable" `Quick test_golden_chrome;
        Prop.test_case ~cases:15 ~name:"span accounting balances under random faults"
          ~gen:gen_plan ~show:show_plan prop_span_accounting;
      ] );
  ]
