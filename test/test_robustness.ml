(* Robustness-harness regression tests: the measurement-noise matrix of
   Scenarios.Robustness must stay deterministic (golden scorecard), the
   perturbation layer must be a strict no-op when the plan is empty, and
   noise alone must never trip the guard envelope's quarantine.

   The matrix here is QUICK-scaled — 24 Mbit/s, 4 s per cell — so the
   whole file runs in seconds; bin/ci.sh drives the full-size matrix
   through the CLI separately. *)

open Ccp_util
open Ccp_core
module Plan = Ccp_perturb.Perturb_plan
module Sampler = Ccp_perturb.Sampler

(* The seed-42 QUICK matrix every test below shares: 4 algorithms x
   [baseline, rtt-jitter, rate-noise]. Forced once, inspected many
   times. *)
let quick_scorecard =
  lazy
    (Scenarios.Robustness.run ~rate_bps:24e6 ~duration:(Time_ns.sec 4) ~seeds:[ 42 ]
       ~perturbs:[ "baseline"; "rtt-jitter"; "rate-noise" ]
       ())

let scorecard_line sc = Ccp_obs.Json.to_string (Scenarios.Robustness.to_json sc)

(* --- golden scorecard: byte-stable regression over the QUICK matrix --- *)

let golden_path () =
  if Sys.file_exists "golden_scorecard.expected" then "golden_scorecard.expected"
  else "test/golden_scorecard.expected"

let test_golden_scorecard () =
  let sc = Lazy.force quick_scorecard in
  Alcotest.(check int) "matrix size" 12 (List.length sc.Scenarios.Robustness.cells);
  let actual = scorecard_line sc in
  (* Regenerate with CCP_REGEN_SCORECARD=path/to/golden_scorecard.expected
     after an intentional schema or dynamics change. *)
  match Sys.getenv_opt "CCP_REGEN_SCORECARD" with
  | Some path ->
    let oc = open_out path in
    output_string oc (actual ^ "\n");
    close_out oc;
    Printf.printf "regenerated %s\n" path
  | None ->
    let ic = open_in (golden_path ()) in
    let expected = input_line ic in
    close_in ic;
    if not (String.equal expected actual) then begin
      (* Full-line diffs of a 12-cell JSON blob are unreadable; find the
         first divergent byte instead. *)
      let n = min (String.length expected) (String.length actual) in
      let rec first_diff i =
        if i >= n then n else if expected.[i] <> actual.[i] then i else first_diff (i + 1)
      in
      let i = first_diff 0 in
      let ctx s = String.sub s (max 0 (i - 40)) (min 80 (String.length s - max 0 (i - 40))) in
      Alcotest.failf "golden scorecard diverges at byte %d:\n  expected ...%s...\n  actual   ...%s..."
        i (ctx expected) (ctx actual)
    end

let test_scorecard_schema () =
  let sc = Lazy.force quick_scorecard in
  match Scenarios.Robustness.validate_scorecard (Scenarios.Robustness.to_json sc) with
  | Ok n -> Alcotest.(check int) "all cells validate" 12 n
  | Error e -> Alcotest.failf "scorecard fails its own schema: %s" e

(* --- guard interaction: noise is not hostility --- *)

(* PR 2's guard envelope quarantines programs that misbehave at runtime.
   A well-behaved algorithm fed noisy measurements must never look like
   an attacker: across the whole QUICK matrix (guard armed in every
   cell), zero quarantines and zero refused installs. *)
let test_no_false_positive_quarantine () =
  let sc = Lazy.force quick_scorecard in
  List.iter
    (fun (c : Scenarios.Robustness.cell) ->
      if c.quarantines <> 0 then
        Alcotest.failf "%s under %s: %d quarantine(s) from measurement noise alone" c.algo
          c.perturb c.quarantines;
      if c.installs_refused <> 0 then
        Alcotest.failf "%s under %s: %d install(s) refused" c.algo c.perturb
          c.installs_refused)
    sc.Scenarios.Robustness.cells

(* --- the remaining perturbations, exercised on one algorithm --- *)

let test_vegas_remaining_perturbations () =
  let sc =
    Scenarios.Robustness.run ~rate_bps:24e6 ~duration:(Time_ns.sec 2) ~seeds:[ 42 ]
      ~algos:[ "ccp-vegas" ]
      ~perturbs:[ "baseline"; "stretch-ack"; "policer"; "combined" ]
      ()
  in
  (match Scenarios.Robustness.validate_scorecard (Scenarios.Robustness.to_json sc) with
  | Ok 4 -> ()
  | Ok n -> Alcotest.failf "expected 4 cells, validated %d" n
  | Error e -> Alcotest.failf "schema: %s" e);
  let cell name =
    List.find
      (fun (c : Scenarios.Robustness.cell) -> c.perturb = name)
      sc.Scenarios.Robustness.cells
  in
  List.iter
    (fun (c : Scenarios.Robustness.cell) ->
      Alcotest.(check int) (c.perturb ^ ": no quarantine") 0 c.quarantines)
    sc.Scenarios.Robustness.cells;
  (* Counter plumbing: each plan's armed primitives must actually fire. *)
  (match (cell "baseline").perturb_stats with
  | None -> ()
  | Some _ -> Alcotest.fail "baseline cell carries perturb stats");
  (match (cell "policer").perturb_stats with
  | Some s ->
    Alcotest.(check bool) "policer saw traffic" true (s.Sampler.policer_passed > 0);
    Alcotest.(check bool) "policer dropped packets" true (s.Sampler.policer_dropped > 0)
  | None -> Alcotest.fail "policer cell lost its stats");
  match (cell "combined").perturb_stats with
  | Some s ->
    Alcotest.(check bool) "combined perturbs rtt" true (s.Sampler.rtt_samples > 0);
    Alcotest.(check bool) "combined perturbs rate" true (s.Sampler.rate_samples > 0)
  | None -> Alcotest.fail "combined cell lost its stats"

(* --- empty plan = strict identity --- *)

(* An armed-but-empty plan must leave the whole pipeline byte-identical
   to a run that never heard of perturbation: same flight-recorder JSONL,
   same result metrics, no sampler stats. Guards against future wiring
   that creates samplers (and burns RNG draws) unconditionally. *)
let recorder_jsonl perturb =
  let obs = Ccp_obs.Obs.create () in
  let config =
    Experiment.default_config ~rate_bps:48e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 2)
  in
  let config =
    {
      config with
      Experiment.seed = 42;
      flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_reno.create ())) ];
      perturb;
      obs = Some obs;
    }
  in
  let result = Experiment.run config in
  (Ccp_obs.Recorder.to_jsonl (Ccp_obs.Obs.recorder_exn obs), result)

let test_empty_plan_identity () =
  Alcotest.(check bool) "make () is none" true (Plan.is_none (Plan.make ()));
  let clean_trace, clean = recorder_jsonl Plan.none in
  let empty_trace, empty = recorder_jsonl (Plan.make ()) in
  Alcotest.(check string) "trace byte-identical under empty plan" clean_trace empty_trace;
  Alcotest.(check (float 0.0)) "same utilization" clean.Experiment.utilization
    empty.Experiment.utilization;
  Alcotest.(check bool) "no sampler stats" true (empty.Experiment.perturb_stats = None)

(* --- the compiled fold path stays allocation-free on degenerate input ---

   Perturbation lives in Tcp_flow, outside the datapath's compiled
   per-ACK fold (Ccp_ext) — the RNG allocates and the fold path must
   not. This drives the fold directly with the degenerate ack shapes
   perturbation can produce (1 ns RTT floor, collapsed delivery rate)
   and re-asserts the obs-off zero-allocation budget of test_obs.ml. *)

let fake_ctl sim ~flow =
  let cwnd = ref 140_000 and rate = ref 0.0 in
  let srtt = Some (Time_ns.ms 10) and latest = Some (Time_ns.ms 11) in
  let send_rate = Some 1e6 and delivery = Some 9e5 in
  let ctl : Ccp_datapath.Congestion_iface.ctl =
    {
      flow;
      mss = 1448;
      now = (fun () -> Ccp_eventsim.Sim.now sim);
      get_cwnd = (fun () -> !cwnd);
      set_cwnd = (fun b -> cwnd := max 1448 b);
      get_rate = (fun () -> !rate);
      set_rate = (fun r -> rate := r);
      srtt = (fun () -> srtt);
      latest_rtt = (fun () -> latest);
      min_rtt = (fun () -> srtt);
      inflight = (fun () -> 5000);
      send_rate_ewma = (fun () -> send_rate);
      delivery_rate_ewma = (fun () -> delivery);
    }
  in
  ctl

let classic_program =
  "Measure(fold { init { acked = 0; minrtt = 1e12 } update { acked = acked + \
   pkt.bytes_acked; minrtt = min(minrtt, pkt.rtt_us) } }).Cwnd(cwnd + 2 * \
   mss).WaitRtts(1.0).Report()"

let perturbed_ack : Ccp_datapath.Congestion_iface.ack_event =
  {
    now = Time_ns.ms 50;
    bytes_acked = 1448;
    rtt_sample = Some (Time_ns.ns 1);  (* the sampler's clamp floor *)
    ecn_echo = false;
    send_rate = Some 1e6;
    delivery_rate = Some 0.0;  (* a collapsed rate estimate *)
    inflight_after = 5000;
  }

let test_fold_zero_alloc_under_perturbed_acks () =
  let sim = Ccp_eventsim.Sim.create () in
  let channel =
    Ccp_ipc.Channel.create ~sim ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 20)) ()
  in
  let ext = Ccp_datapath.Ccp_ext.create ~sim ~channel () in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun _ -> ());
  let ctl = fake_ctl sim ~flow:1 in
  let cc = Ccp_datapath.Ccp_ext.congestion_control ext in
  cc.Ccp_datapath.Congestion_iface.on_init ctl;
  Ccp_eventsim.Sim.run sim;
  Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
    (Ccp_ipc.Message.Install
       { flow = 1; program = Ccp_lang.Parser.parse_program classic_program });
  Ccp_eventsim.Sim.run ~until:(Time_ns.add (Ccp_eventsim.Sim.now sim) (Time_ns.ms 5)) sim;
  for _ = 1 to 100 do
    cc.Ccp_datapath.Congestion_iface.on_ack ctl perturbed_ack
  done;
  let words0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    cc.Ccp_datapath.Congestion_iface.on_ack ctl perturbed_ack
  done;
  let delta = Gc.minor_words () -. words0 in
  if delta > 100.0 then
    Alcotest.failf "per-ACK fold allocated %.0f minor words over 10k perturbed ACKs" delta;
  ignore ext

(* --- properties: sampler laws and scorecard determinism --- *)

let gen_plan rng =
  let maybe gen = if Rng.int rng 2 = 0 then None else Some (gen ()) in
  let pct hi = float_of_int (Prop.int_range rng 0 hi) /. 100.0 in
  let rtt_jitter () =
    {
      Plan.additive_sigma = Time_ns.us (Prop.int_range rng 0 5_000);
      multiplicative = pct 30;
      burst =
        (if Rng.int rng 2 = 0 then None
         else
           Some
             {
               Plan.probability = pct 10;
               extra = Time_ns.us (Prop.int_range rng 1 20_000);
               length = Prop.int_range rng 1 16;
             });
    }
  in
  let rate_error () = { Plan.multiplicative = pct 50; collapse_probability = pct 10 } in
  Plan.make ?rtt_jitter:(maybe rtt_jitter) ?rate_error:(maybe rate_error) ()

type sampler_case = {
  plan : Plan.t;
  seed : int;
  rtts : Time_ns.t list;
  rates : float list;
}

let gen_case rng =
  {
    plan = gen_plan rng;
    seed = Prop.int_range rng 0 1_000_000;
    rtts = List.init 50 (fun _ -> Time_ns.us (Prop.int_range rng 100 50_000));
    rates = List.init 20 (fun _ -> float_of_int (Prop.int_range rng 0 2_000_000));
  }

let show_case c = Printf.sprintf "seed=%d plan=%s" c.seed (Plan.describe c.plan)

let prop_sampler_deterministic c =
  let drive () =
    let s = Sampler.create ~seed:c.seed c.plan in
    let out_r = List.map (fun t -> Sampler.rtt s t) c.rtts in
    let out_d = List.map (fun r -> Sampler.delivery_rate s r) c.rates in
    (out_r, out_d, Sampler.stats s)
  in
  Prop.require "same seed + plan => identical draws and stats" (drive () = drive ())

let prop_empty_plan_sampler_identity c =
  let s = Sampler.create ~seed:c.seed (Plan.make ()) in
  List.iter
    (fun t ->
      Prop.check_eq ~what:"rtt passes through" Time_ns.to_string t (Sampler.rtt s t))
    c.rtts;
  List.iter
    (fun r ->
      Prop.check_eq ~what:"rate passes through" string_of_float r (Sampler.delivery_rate s r))
    c.rates;
  Prop.require "stats all zero" (Sampler.stats s = Sampler.zero_stats)

let prop_compose_identity c =
  let p = c.plan in
  Prop.require "compose none p = p" (Plan.compose Plan.none p = p);
  Prop.require "compose p none = p" (Plan.compose p Plan.none = p);
  Prop.require "compose p p = p" (Plan.compose p p = p)

let scorecard_determinism () =
  let tiny () =
    scorecard_line
      (Scenarios.Robustness.run ~rate_bps:24e6 ~duration:(Time_ns.sec 2) ~seeds:[ 7 ]
         ~algos:[ "ccp-vegas" ] ~perturbs:[ "rtt-jitter" ] ())
  in
  Alcotest.(check string) "scorecard JSON byte-identical across runs" (tiny ()) (tiny ())

let suite =
  [
    ( "robustness",
      [
        Alcotest.test_case "golden scorecard" `Quick test_golden_scorecard;
        Alcotest.test_case "scorecard schema" `Quick test_scorecard_schema;
        Alcotest.test_case "no false-positive quarantine" `Quick
          test_no_false_positive_quarantine;
        Alcotest.test_case "stretch/policer/combined on vegas" `Quick
          test_vegas_remaining_perturbations;
        Alcotest.test_case "empty plan is identity" `Quick test_empty_plan_identity;
        Alcotest.test_case "fold zero-alloc on perturbed acks" `Quick
          test_fold_zero_alloc_under_perturbed_acks;
        Alcotest.test_case "scorecard determinism" `Quick scorecard_determinism;
      ] );
    ( "robustness.props",
      [
        Prop.test_case ~cases:50 ~name:"sampler determinism" ~gen:gen_case ~show:show_case
          prop_sampler_deterministic;
        Prop.test_case ~cases:50 ~name:"empty-plan sampler identity" ~gen:gen_case
          ~show:show_case prop_empty_plan_sampler_identity;
        Prop.test_case ~cases:100 ~name:"compose identity laws" ~gen:gen_case
          ~show:show_case prop_compose_identity;
      ] );
  ]
