(* Invariant tests for the fault-injection layer: random {!Fault_plan}s
   exercised at the channel level (conservation of messages, FIFO when
   reordering is off, determinism) and end-to-end through {!Experiment}
   (cwnd floor, exactly one active controller at any sampled instant). *)

open Ccp_util
open Ccp_eventsim
open Ccp_net
open Ccp_datapath
open Ccp_core

(* --- random fault plans --- *)

let show_plan = Ccp_ipc.Fault_plan.describe

let gen_interval rng ~horizon =
  let from_ = Rng.int rng (horizon / 2) in
  let len = 1 + Rng.int rng (horizon / 4) in
  { Ccp_ipc.Fault_plan.from_; until = from_ + len }

(* [allow_reorder]/[allow_dup] let the FIFO property restrict itself to
   plans where FIFO is actually promised. *)
let gen_plan ?(allow_reorder = true) ?(allow_dup = true) rng ~horizon =
  let maybe p f = if Rng.float rng 1.0 < p then Some (f rng) else None in
  Ccp_ipc.Fault_plan.make
    ~drop_probability:(Rng.float rng 0.4)
    ~duplicate_probability:(if allow_dup then Rng.float rng 0.3 else 0.0)
    ?spike:
      (maybe 0.5 (fun rng ->
           {
             Ccp_ipc.Fault_plan.probability = Rng.float rng 0.5;
             extra = Time_ns.us (1 + Rng.int rng 5_000);
           }))
    ?reorder:
      (if allow_reorder then
         maybe 0.5 (fun rng ->
             {
               Ccp_ipc.Fault_plan.probability = Rng.float rng 0.5;
               window = Time_ns.us (1 + Rng.int rng 2_000);
             })
       else None)
    ~partitions:(if Rng.bool rng then [ gen_interval rng ~horizon ] else [])
    ~agent_outages:(if Rng.bool rng then [ gen_interval rng ~horizon ] else [])
    ()

(* --- channel-level invariants --- *)

(* Push [n] sequence-numbered messages through a faulty channel (the
   sequence number rides in the [flow] field) and return what each end
   received, in arrival order, plus the channel itself for its counters. *)
let run_channel ~seed ~plan ~n =
  let sim = Sim.create ~seed () in
  let channel =
    Ccp_ipc.Channel.create ~sim
      ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 40))
      ~faults:plan ()
  in
  let at_agent = ref [] and at_datapath = ref [] in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun m ->
      at_agent := Ccp_ipc.Message.flow m :: !at_agent);
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Datapath_end (fun m ->
      at_datapath := Ccp_ipc.Message.flow m :: !at_datapath);
  let horizon = Time_ns.ms 100 in
  for i = 0 to n - 1 do
    let at = Time_ns.ns (i * (horizon / n)) in
    ignore
      (Sim.schedule sim ~at (fun () ->
           Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Datapath_end
             (Ccp_ipc.Message.Closed { flow = i });
           Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
             (Ccp_ipc.Message.Set_cwnd { flow = i; bytes = 1448 })))
  done;
  Sim.run ~until:(Time_ns.ms 500) sim;
  (List.rev !at_agent, List.rev !at_datapath, channel)

let gen_case ?allow_reorder ?allow_dup rng =
  let plan = gen_plan ?allow_reorder ?allow_dup rng ~horizon:(Time_ns.ms 100) in
  let seed = Rng.int rng 1_000_000 in
  (seed, plan)

let show_case (seed, plan) = Printf.sprintf "seed=%d plan=%s" seed (show_plan plan)

let prop_conservation =
  Prop.test_case ~cases:150 ~name:"message conservation under faults" ~gen:gen_case
    ~show:show_case (fun (seed, plan) ->
      let at_agent, at_datapath, channel = run_channel ~seed ~plan ~n:60 in
      let s = Ccp_ipc.Channel.fault_stats channel in
      let sent =
        Ccp_ipc.Channel.messages_sent channel Ccp_ipc.Channel.Datapath_end
        + Ccp_ipc.Channel.messages_sent channel Ccp_ipc.Channel.Agent_end
      in
      let delivered = List.length at_agent + List.length at_datapath in
      (* Every copy is accounted for: delivered = sent + duplicates made
         - random drops - partition/outage losses. *)
      Prop.check_eq ~what:"delivered = sent + dup - drop - partition" string_of_int
        (sent + s.Ccp_ipc.Channel.duplicated - s.Ccp_ipc.Channel.dropped
        - s.Ccp_ipc.Channel.partition_dropped)
        delivered;
      (* Nothing is invented: every delivered sequence number was sent. *)
      List.iter
        (fun seq -> Prop.require "delivered seq was sent" (seq >= 0 && seq < 60))
        (at_agent @ at_datapath))

let prop_fifo_without_reordering =
  Prop.test_case ~cases:150 ~name:"FIFO per direction when reordering off"
    ~gen:(gen_case ~allow_reorder:false ~allow_dup:false)
    ~show:show_case
    (fun (seed, plan) ->
      let at_agent, at_datapath, _ = run_channel ~seed ~plan ~n:60 in
      let sorted l = List.sort_uniq compare l = l in
      (* Drops and spikes are allowed; overtaking is not. *)
      Prop.require "to-agent direction in order" (sorted at_agent);
      Prop.require "to-datapath direction in order" (sorted at_datapath))

let prop_deterministic =
  Prop.test_case ~cases:50 ~name:"faulty runs are reproducible" ~gen:gen_case
    ~show:show_case (fun (seed, plan) ->
      let a1, d1, c1 = run_channel ~seed ~plan ~n:40 in
      let a2, d2, c2 = run_channel ~seed ~plan ~n:40 in
      Prop.require "same deliveries to agent" (a1 = a2);
      Prop.require "same deliveries to datapath" (d1 = d2);
      Prop.require "same counters"
        (Ccp_ipc.Channel.fault_stats c1 = Ccp_ipc.Channel.fault_stats c2))

let test_clean_channel_stats_zero () =
  let at_agent, at_datapath, channel =
    run_channel ~seed:3 ~plan:Ccp_ipc.Fault_plan.none ~n:60
  in
  Alcotest.(check int) "all delivered to agent" 60 (List.length at_agent);
  Alcotest.(check int) "all delivered to datapath" 60 (List.length at_datapath);
  let s = Ccp_ipc.Channel.fault_stats channel in
  Alcotest.(check bool) "all counters zero" true
    (s = { Ccp_ipc.Channel.dropped = 0; duplicated = 0; delayed = 0; reordered = 0;
           partition_dropped = 0 })

(* --- interval normalization: make/crash merge rules --- *)

let iv a b = { Ccp_ipc.Fault_plan.from_ = Time_ns.ms a; until = Time_ns.ms b }

let intervals = Alcotest.testable
    (Fmt.Dump.list (fun ppf { Ccp_ipc.Fault_plan.from_; until } ->
         Format.fprintf ppf "[%s,%s)" (Time_ns.to_string from_) (Time_ns.to_string until)))
    ( = )

let test_intervals_merge_and_sort () =
  (* However the episodes are phrased — unsorted, overlapping, abutting —
     the plan holds a sorted minimal list per field. *)
  let plan =
    Ccp_ipc.Fault_plan.make
      ~partitions:[ iv 50 60; iv 10 20; iv 18 25 ]
      ~agent_outages:[ iv 30 40; iv 40 45; iv 5 8 ]
      ()
  in
  Alcotest.check intervals "overlapping partitions merged"
    [ iv 10 25; iv 50 60 ] plan.Ccp_ipc.Fault_plan.partitions;
  Alcotest.check intervals "abutting outages merged"
    [ iv 5 8; iv 30 45 ] plan.Ccp_ipc.Fault_plan.agent_outages;
  (* Normalization means no double-counting: 15+10 ms of partition plus
     3+15 ms of outage. *)
  Alcotest.(check string) "partition_time counts each instant once"
    (Time_ns.to_string (Time_ns.ms 43))
    (Time_ns.to_string (Ccp_ipc.Fault_plan.partition_time plan));
  (* An interval swallowed whole by a neighbour disappears entirely. *)
  let nested = Ccp_ipc.Fault_plan.make ~partitions:[ iv 10 50; iv 20 30 ] () in
  Alcotest.check intervals "nested interval absorbed" [ iv 10 50 ]
    nested.Ccp_ipc.Fault_plan.partitions

let test_intervals_half_open () =
  let plan = Ccp_ipc.Fault_plan.make ~agent_outages:[ iv 10 20 ] () in
  let down ms = Ccp_ipc.Fault_plan.agent_down plan (Time_ns.ms ms) in
  Alcotest.(check bool) "closed at from_" true (down 10);
  Alcotest.(check bool) "open at until" false (down 20);
  Alcotest.(check bool) "before" false (down 9);
  Alcotest.(check bool) "inside" true (down 19);
  (* Outages count as partitions for in_partition, not vice versa. *)
  Alcotest.(check bool) "outage implies in_partition" true
    (Ccp_ipc.Fault_plan.in_partition plan (Time_ns.ms 15));
  let part_only = Ccp_ipc.Fault_plan.make ~partitions:[ iv 10 20 ] () in
  Alcotest.(check bool) "partition is not an outage" false
    (Ccp_ipc.Fault_plan.agent_down part_only (Time_ns.ms 15))

let test_crash_renormalizes () =
  let base = Ccp_ipc.Fault_plan.make ~agent_outages:[ iv 10 20 ] () in
  (* A crash overlapping an existing episode extends it... *)
  let extended = Ccp_ipc.Fault_plan.crash ~at:(Time_ns.ms 18) ~restart:(Time_ns.ms 30) base in
  Alcotest.check intervals "overlapping crash extends the episode" [ iv 10 30 ]
    extended.Ccp_ipc.Fault_plan.agent_outages;
  (* ...a disjoint one lands sorted next to it. *)
  let two = Ccp_ipc.Fault_plan.crash ~at:(Time_ns.ms 2) ~restart:(Time_ns.ms 5) extended in
  Alcotest.check intervals "disjoint crash sorted in" [ iv 2 5; iv 10 30 ]
    two.Ccp_ipc.Fault_plan.agent_outages

let test_make_rejects_empty_intervals () =
  let bad field =
    match field () with
    | (_ : Ccp_ipc.Fault_plan.t) -> Alcotest.fail "empty interval accepted"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> Ccp_ipc.Fault_plan.make ~partitions:[ iv 10 10 ] ());
  bad (fun () -> Ccp_ipc.Fault_plan.make ~agent_outages:[ iv 20 10 ] ())

(* --- crash between Install and Install_result is atomic --- *)

(* The datapath admits a program in one step: parse/typecheck/compile,
   then store. An agent crash at any instant around the Install exchange
   — before the Install arrives, while the verdict is in flight back, or
   after — must leave the datapath either fully admitted (program stored
   AND compiled) or untouched, never in between. The agent may miss the
   verdict; the datapath must not be half-configured. *)

let install_ctl sim ~flow =
  let cwnd = ref 14_480 in
  {
    Ccp_datapath.Congestion_iface.flow;
    mss = 1448;
    now = (fun () -> Sim.now sim);
    get_cwnd = (fun () -> !cwnd);
    set_cwnd = (fun b -> cwnd := b);
    get_rate = (fun () -> 0.0);
    set_rate = (fun _ -> ());
    srtt = (fun () -> Some (Time_ns.ms 10));
    latest_rtt = (fun () -> Some (Time_ns.ms 10));
    min_rtt = (fun () -> Some (Time_ns.ms 10));
    inflight = (fun () -> 5000);
    send_rate_ewma = (fun () -> None);
    delivery_rate_ewma = (fun () -> None);
  }

let install_program =
  Ccp_lang.Parser.parse_program "Cwnd(cwnd + mss).WaitRtts(1.0).Report()"

let prop_install_atomic_under_crash =
  Prop.test_case ~cases:120 ~name:"crash around Install never half-admits"
    ~gen:(fun rng -> (Prop.int_range rng 0 200, Rng.int rng 1_000_000))
    ~show:(fun (delta_us, seed) -> Printf.sprintf "crash at install+%dus seed=%d" delta_us seed)
    (fun (delta_us, seed) ->
      let sim = Sim.create ~seed () in
      let install_at = Time_ns.ms 1 in
      (* One-way IPC latency is 40 us, so the sweep [0, 200) us straddles
         every phase of the exchange: send, in-flight, verdict return. *)
      let plan =
        Ccp_ipc.Fault_plan.crash
          ~at:(Time_ns.add install_at (Time_ns.us delta_us))
          ~restart:(Time_ns.add install_at (Time_ns.ms 5))
          Ccp_ipc.Fault_plan.none
      in
      let channel =
        Ccp_ipc.Channel.create ~sim
          ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 40))
          ~faults:plan ()
      in
      let ext = Ccp_ext.create ~sim ~channel () in
      let accepted = ref 0 in
      Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun msg ->
          match msg with
          | Ccp_ipc.Message.Install_result { verdict = Ccp_ipc.Message.Accepted; _ } ->
            incr accepted
          | _ -> ());
      let cc = Ccp_ext.congestion_control ext in
      cc.Ccp_datapath.Congestion_iface.on_init (install_ctl sim ~flow:1);
      ignore
        (Sim.schedule sim ~at:install_at (fun () ->
             Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
               (Ccp_ipc.Message.Install { flow = 1; program = install_program })));
      Sim.run ~until:(Time_ns.ms 10) sim;
      let stored = Ccp_ext.installed_program ext ~flow:1 <> None in
      let compiled = Ccp_ext.has_compiled_program ext ~flow:1 in
      Prop.check_eq ~what:"program stored iff compiled" string_of_bool stored compiled;
      (* A verdict the agent did see is never a lie. *)
      if !accepted > 0 then Prop.require "accepted verdict => fully admitted" (stored && compiled))

(* --- end-to-end invariants under random fault plans --- *)

(* Sampled assertions wired in through [Experiment.config.inspect]: at
   every sampled instant the flow has exactly one active controller, and
   cwnd (recorded on every change in the trace) never drops below 1 MSS. *)
let test_random_plans_end_to_end () =
  (* Same topology as Scenarios.Degraded, random plans, inspect wired. *)
  let rng = Rng.create ~seed:(Prop.seed lxor 0xE2E) in
  for case = 1 to 10 do
    let plan = gen_plan rng ~horizon:(Time_ns.sec 3) in
    let seed = Rng.int rng 1_000_000 in
    let violations = ref [] in
    let duration = Time_ns.sec 3 in
    let base =
      Experiment.default_config ~rate_bps:48e6 ~base_rtt:(Time_ns.ms 20) ~duration
    in
    let config =
      {
        base with
        Experiment.seed;
        faults = plan;
        flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_reno.create ())) ];
        datapath =
          {
            Ccp_ext.default_config with
            fallback = Some (Scenarios.Degraded.reno_fallback ());
          };
        inspect =
          Some
            (fun { Experiment.h_sim; h_datapath; _ } ->
              let rec sample at =
                if Time_ns.compare at duration < 0 then
                  ignore
                    (Sim.schedule h_sim ~at (fun () ->
                         (match Ccp_ext.controller h_datapath ~flow:0 with
                         | None -> ()
                         | Some c ->
                             let in_fb = Ccp_ext.in_fallback h_datapath ~flow:0 in
                             if in_fb <> (c = Ccp_ext.Native_fallback) then
                               violations :=
                                 Printf.sprintf "t=%s: fallback flag %b vs controller"
                                   (Time_ns.to_string at) in_fb
                                 :: !violations);
                         sample (Time_ns.add at (Time_ns.ms 100))))
              in
              sample (Time_ns.ms 100));
      }
    in
    let r = Experiment.run config in
    Alcotest.(check (list string))
      (Printf.sprintf "case %d (%s): one active controller" case (show_plan plan))
      [] !violations;
    let cwnd = Trace.series r.Experiment.trace "cwnd.0" in
    Alcotest.(check bool)
      (Printf.sprintf "case %d: cwnd trace nonempty" case)
      true (cwnd <> []);
    List.iter
      (fun (at, v) ->
        if v < 1448.0 then
          Alcotest.failf "case %d (%s): cwnd %.0f < 1 MSS at %s" case (show_plan plan) v
            (Time_ns.to_string at))
      cwnd
  done

let suite =
  [
    ( "faults.channel",
      [
        prop_conservation;
        prop_fifo_without_reordering;
        prop_deterministic;
        Alcotest.test_case "clean channel: zero fault stats" `Quick
          test_clean_channel_stats_zero;
      ] );
    ( "faults.intervals",
      [
        Alcotest.test_case "merge and sort" `Quick test_intervals_merge_and_sort;
        Alcotest.test_case "half-open boundaries" `Quick test_intervals_half_open;
        Alcotest.test_case "crash re-normalizes" `Quick test_crash_renormalizes;
        Alcotest.test_case "empty intervals rejected" `Quick test_make_rejects_empty_intervals;
        prop_install_atomic_under_crash;
      ] );
    ( "faults.e2e",
      [ Alcotest.test_case "random plans keep invariants" `Slow test_random_plans_end_to_end ] );
  ]
