(* Invariant tests for the fault-injection layer: random {!Fault_plan}s
   exercised at the channel level (conservation of messages, FIFO when
   reordering is off, determinism) and end-to-end through {!Experiment}
   (cwnd floor, exactly one active controller at any sampled instant). *)

open Ccp_util
open Ccp_eventsim
open Ccp_net
open Ccp_datapath
open Ccp_core

(* --- random fault plans --- *)

let show_plan = Ccp_ipc.Fault_plan.describe

let gen_interval rng ~horizon =
  let from_ = Rng.int rng (horizon / 2) in
  let len = 1 + Rng.int rng (horizon / 4) in
  { Ccp_ipc.Fault_plan.from_; until = from_ + len }

(* [allow_reorder]/[allow_dup] let the FIFO property restrict itself to
   plans where FIFO is actually promised. *)
let gen_plan ?(allow_reorder = true) ?(allow_dup = true) rng ~horizon =
  let maybe p f = if Rng.float rng 1.0 < p then Some (f rng) else None in
  Ccp_ipc.Fault_plan.make
    ~drop_probability:(Rng.float rng 0.4)
    ~duplicate_probability:(if allow_dup then Rng.float rng 0.3 else 0.0)
    ?spike:
      (maybe 0.5 (fun rng ->
           {
             Ccp_ipc.Fault_plan.probability = Rng.float rng 0.5;
             extra = Time_ns.us (1 + Rng.int rng 5_000);
           }))
    ?reorder:
      (if allow_reorder then
         maybe 0.5 (fun rng ->
             {
               Ccp_ipc.Fault_plan.probability = Rng.float rng 0.5;
               window = Time_ns.us (1 + Rng.int rng 2_000);
             })
       else None)
    ~partitions:(if Rng.bool rng then [ gen_interval rng ~horizon ] else [])
    ~agent_outages:(if Rng.bool rng then [ gen_interval rng ~horizon ] else [])
    ()

(* --- channel-level invariants --- *)

(* Push [n] sequence-numbered messages through a faulty channel (the
   sequence number rides in the [flow] field) and return what each end
   received, in arrival order, plus the channel itself for its counters. *)
let run_channel ~seed ~plan ~n =
  let sim = Sim.create ~seed () in
  let channel =
    Ccp_ipc.Channel.create ~sim
      ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 40))
      ~faults:plan ()
  in
  let at_agent = ref [] and at_datapath = ref [] in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun m ->
      at_agent := Ccp_ipc.Message.flow m :: !at_agent);
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Datapath_end (fun m ->
      at_datapath := Ccp_ipc.Message.flow m :: !at_datapath);
  let horizon = Time_ns.ms 100 in
  for i = 0 to n - 1 do
    let at = Time_ns.ns (i * (horizon / n)) in
    ignore
      (Sim.schedule sim ~at (fun () ->
           Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Datapath_end
             (Ccp_ipc.Message.Closed { flow = i });
           Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
             (Ccp_ipc.Message.Set_cwnd { flow = i; bytes = 1448 })))
  done;
  Sim.run ~until:(Time_ns.ms 500) sim;
  (List.rev !at_agent, List.rev !at_datapath, channel)

let gen_case ?allow_reorder ?allow_dup rng =
  let plan = gen_plan ?allow_reorder ?allow_dup rng ~horizon:(Time_ns.ms 100) in
  let seed = Rng.int rng 1_000_000 in
  (seed, plan)

let show_case (seed, plan) = Printf.sprintf "seed=%d plan=%s" seed (show_plan plan)

let prop_conservation =
  Prop.test_case ~cases:150 ~name:"message conservation under faults" ~gen:gen_case
    ~show:show_case (fun (seed, plan) ->
      let at_agent, at_datapath, channel = run_channel ~seed ~plan ~n:60 in
      let s = Ccp_ipc.Channel.fault_stats channel in
      let sent =
        Ccp_ipc.Channel.messages_sent channel Ccp_ipc.Channel.Datapath_end
        + Ccp_ipc.Channel.messages_sent channel Ccp_ipc.Channel.Agent_end
      in
      let delivered = List.length at_agent + List.length at_datapath in
      (* Every copy is accounted for: delivered = sent + duplicates made
         - random drops - partition/outage losses. *)
      Prop.check_eq ~what:"delivered = sent + dup - drop - partition" string_of_int
        (sent + s.Ccp_ipc.Channel.duplicated - s.Ccp_ipc.Channel.dropped
        - s.Ccp_ipc.Channel.partition_dropped)
        delivered;
      (* Nothing is invented: every delivered sequence number was sent. *)
      List.iter
        (fun seq -> Prop.require "delivered seq was sent" (seq >= 0 && seq < 60))
        (at_agent @ at_datapath))

let prop_fifo_without_reordering =
  Prop.test_case ~cases:150 ~name:"FIFO per direction when reordering off"
    ~gen:(gen_case ~allow_reorder:false ~allow_dup:false)
    ~show:show_case
    (fun (seed, plan) ->
      let at_agent, at_datapath, _ = run_channel ~seed ~plan ~n:60 in
      let sorted l = List.sort_uniq compare l = l in
      (* Drops and spikes are allowed; overtaking is not. *)
      Prop.require "to-agent direction in order" (sorted at_agent);
      Prop.require "to-datapath direction in order" (sorted at_datapath))

let prop_deterministic =
  Prop.test_case ~cases:50 ~name:"faulty runs are reproducible" ~gen:gen_case
    ~show:show_case (fun (seed, plan) ->
      let a1, d1, c1 = run_channel ~seed ~plan ~n:40 in
      let a2, d2, c2 = run_channel ~seed ~plan ~n:40 in
      Prop.require "same deliveries to agent" (a1 = a2);
      Prop.require "same deliveries to datapath" (d1 = d2);
      Prop.require "same counters"
        (Ccp_ipc.Channel.fault_stats c1 = Ccp_ipc.Channel.fault_stats c2))

let test_clean_channel_stats_zero () =
  let at_agent, at_datapath, channel =
    run_channel ~seed:3 ~plan:Ccp_ipc.Fault_plan.none ~n:60
  in
  Alcotest.(check int) "all delivered to agent" 60 (List.length at_agent);
  Alcotest.(check int) "all delivered to datapath" 60 (List.length at_datapath);
  let s = Ccp_ipc.Channel.fault_stats channel in
  Alcotest.(check bool) "all counters zero" true
    (s = { Ccp_ipc.Channel.dropped = 0; duplicated = 0; delayed = 0; reordered = 0;
           partition_dropped = 0 })

(* --- end-to-end invariants under random fault plans --- *)

(* Sampled assertions wired in through [Experiment.config.inspect]: at
   every sampled instant the flow has exactly one active controller, and
   cwnd (recorded on every change in the trace) never drops below 1 MSS. *)
let test_random_plans_end_to_end () =
  (* Same topology as Scenarios.Degraded, random plans, inspect wired. *)
  let rng = Rng.create ~seed:(Prop.seed lxor 0xE2E) in
  for case = 1 to 10 do
    let plan = gen_plan rng ~horizon:(Time_ns.sec 3) in
    let seed = Rng.int rng 1_000_000 in
    let violations = ref [] in
    let duration = Time_ns.sec 3 in
    let base =
      Experiment.default_config ~rate_bps:48e6 ~base_rtt:(Time_ns.ms 20) ~duration
    in
    let config =
      {
        base with
        Experiment.seed;
        faults = plan;
        flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_reno.create ())) ];
        datapath =
          {
            Ccp_ext.default_config with
            fallback = Some (Scenarios.Degraded.reno_fallback ());
          };
        inspect =
          Some
            (fun { Experiment.h_sim; h_datapath; _ } ->
              let rec sample at =
                if Time_ns.compare at duration < 0 then
                  ignore
                    (Sim.schedule h_sim ~at (fun () ->
                         (match Ccp_ext.controller h_datapath ~flow:0 with
                         | None -> ()
                         | Some c ->
                             let in_fb = Ccp_ext.in_fallback h_datapath ~flow:0 in
                             if in_fb <> (c = Ccp_ext.Native_fallback) then
                               violations :=
                                 Printf.sprintf "t=%s: fallback flag %b vs controller"
                                   (Time_ns.to_string at) in_fb
                                 :: !violations);
                         sample (Time_ns.add at (Time_ns.ms 100))))
              in
              sample (Time_ns.ms 100));
      }
    in
    let r = Experiment.run config in
    Alcotest.(check (list string))
      (Printf.sprintf "case %d (%s): one active controller" case (show_plan plan))
      [] !violations;
    let cwnd = Trace.series r.Experiment.trace "cwnd.0" in
    Alcotest.(check bool)
      (Printf.sprintf "case %d: cwnd trace nonempty" case)
      true (cwnd <> []);
    List.iter
      (fun (at, v) ->
        if v < 1448.0 then
          Alcotest.failf "case %d (%s): cwnd %.0f < 1 MSS at %s" case (show_plan plan) v
            (Time_ns.to_string at))
      cwnd
  done

let suite =
  [
    ( "faults.channel",
      [
        prop_conservation;
        prop_fifo_without_reordering;
        prop_deterministic;
        Alcotest.test_case "clean channel: zero fault stats" `Quick
          test_clean_channel_stats_zero;
      ] );
    ( "faults.e2e",
      [ Alcotest.test_case "random plans keep invariants" `Slow test_random_plans_end_to_end ] );
  ]
