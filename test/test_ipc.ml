(* Tests for the IPC substrate: wire primitives, the message codec, the
   latency models, and the simulated channel. *)

open Ccp_util
open Ccp_eventsim
open Ccp_ipc

(* --- Wire --- *)

let test_varint_round_trip () =
  List.iter
    (fun n ->
      let w = Wire.Writer.create () in
      Wire.Writer.varint w n;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Alcotest.(check int) (Printf.sprintf "varint %d" n) n (Wire.Reader.varint r);
      Alcotest.(check bool) "consumed" true (Wire.Reader.at_end r))
    [ 0; 1; 127; 128; 300; 16_384; 1_000_000; max_int ]

let test_varint_compact () =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w 127;
  Alcotest.(check int) "small value one byte" 1 (Wire.Writer.length w)

let test_varint_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Wire.Writer.varint: negative") (fun () ->
      Wire.Writer.varint (Wire.Writer.create ()) (-1))

let test_zigzag_round_trip () =
  List.iter
    (fun n ->
      let w = Wire.Writer.create () in
      Wire.Writer.zigzag w n;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Alcotest.(check int) (Printf.sprintf "zigzag %d" n) n (Wire.Reader.zigzag r))
    [ 0; 1; -1; 2; -2; 1_000_000; -1_000_000 ]

let test_float_and_string () =
  let w = Wire.Writer.create () in
  Wire.Writer.float w 16.125;
  Wire.Writer.float w (-0.0);
  Wire.Writer.string w "cwnd";
  Wire.Writer.string w "";
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  Alcotest.(check (float 0.0)) "float exact" 16.125 (Wire.Reader.float r);
  Alcotest.(check (float 0.0)) "negative zero" (-0.0) (Wire.Reader.float r);
  Alcotest.(check string) "string" "cwnd" (Wire.Reader.string r);
  Alcotest.(check string) "empty string" "" (Wire.Reader.string r)

let test_reader_truncation () =
  let r = Wire.Reader.of_string "\x80" in
  (* continuation bit set but no next byte *)
  match Wire.Reader.varint r with
  | _ -> Alcotest.fail "expected Truncated"
  | exception Wire.Reader.Truncated -> ()

let prop_wire_round_trip =
  QCheck.Test.make ~name:"wire int/float/string round-trip" ~count:300
    QCheck.(triple (int_bound max_int) float string)
    (fun (n, f, s) ->
      QCheck.assume (not (Float.is_nan f));
      let w = Wire.Writer.create () in
      Wire.Writer.varint w n;
      Wire.Writer.float w f;
      Wire.Writer.string w s;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Wire.Reader.varint r = n && Wire.Reader.float r = f && Wire.Reader.string r = s)

(* --- Codec --- *)

let sample_program =
  Ccp_lang.Parser.parse_program
    "Measure(fold { init { acked = 0; minrtt = 1e12 } update { acked = acked + \
     pkt.bytes_acked; minrtt = min(minrtt, pkt.rtt_us) } }).Cwnd(cwnd + 2 * \
     mss).Rate(1.25 * rate).WaitRtts(1.0).Report()"

let all_message_kinds : Message.t list =
  [
    Message.Ready { flow = 1; mss = 1448; init_cwnd = 14480 };
    Message.Report { flow = 2; fields = [| ("acked", 1.5); ("_cwnd", 99.0) |] };
    Message.Report_vector
      {
        flow = 3;
        columns = [| "rtt_us"; "bytes_acked" |];
        rows = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |];
      };
    Message.Urgent
      { flow = 4; kind = Message.Dup_ack_loss; cwnd_at_event = 10; inflight_at_event = 20 };
    Message.Urgent { flow = 4; kind = Message.Timeout; cwnd_at_event = 1; inflight_at_event = 0 };
    Message.Urgent { flow = 4; kind = Message.Ecn; cwnd_at_event = 5; inflight_at_event = 5 };
    Message.Closed { flow = 5 };
    Message.Install { flow = 6; program = sample_program };
    Message.Set_cwnd { flow = 7; bytes = 123_456 };
    Message.Set_rate { flow = 8; bytes_per_sec = 1.25e9 };
  ]

let test_codec_round_trip_all () =
  List.iter
    (fun msg ->
      let decoded = Codec.decode (Codec.encode msg) in
      Alcotest.(check bool) (Message.describe msg) true (Message.equal msg decoded))
    all_message_kinds

let test_codec_rejects_garbage () =
  (match Codec.decode "\xff\x01\x02" with
  | _ -> Alcotest.fail "expected decode error"
  | exception Codec.Decode_error _ -> ());
  (* Trailing bytes after a valid message are an error too. *)
  let valid = Codec.encode (Message.Closed { flow = 1 }) in
  match Codec.decode (valid ^ "x") with
  | _ -> Alcotest.fail "expected trailing-bytes error"
  | exception Codec.Decode_error _ -> ()

let test_codec_program_round_trip () =
  let decoded = Codec.decode_program (Codec.encode_program sample_program) in
  Alcotest.(check bool) "program" true (Ccp_lang.Ast.equal_program sample_program decoded)

let test_codec_size_reasonable () =
  (* One fold report with the reserved fields should be well under an MTU
     — the paper's premise that reports are cheap. *)
  let report =
    Message.Report
      {
        flow = 1;
        fields = Array.init 18 (fun i -> (Printf.sprintf "_field%d" i, float_of_int i));
      }
  in
  Alcotest.(check bool) "report < 400 bytes" true (Codec.encoded_size report < 400)

let gen_message : Message.t QCheck.Gen.t =
  let open QCheck.Gen in
  let small_string = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  oneof
    [
      map3
        (fun flow mss init_cwnd -> Message.Ready { flow; mss; init_cwnd })
        (int_bound 1000) (int_bound 9000) (int_bound 1_000_000);
      map2
        (fun flow fields -> Message.Report { flow; fields = Array.of_list fields })
        (int_bound 1000)
        (list_size (int_range 0 10) (pair small_string (float_bound_inclusive 1e9)));
      map2
        (fun flow bytes -> Message.Set_cwnd { flow; bytes })
        (int_bound 1000) (int_bound 10_000_000);
      map2
        (fun flow kind ->
          Message.Urgent { flow; kind; cwnd_at_event = 1; inflight_at_event = 2 })
        (int_bound 1000)
        (oneofl [ Message.Dup_ack_loss; Message.Timeout; Message.Ecn ]);
    ]

let prop_codec_round_trip =
  QCheck.Test.make ~name:"codec round-trip (random messages)" ~count:300
    (QCheck.make gen_message ~print:Message.describe)
    (fun msg -> Message.equal msg (Codec.decode (Codec.encode msg)))

(* --- trace-context field: wire compatibility --- *)

let test_traced_codec_compat () =
  List.iter
    (fun msg ->
      (* No span: byte-identical to the untraced encoding. *)
      Alcotest.(check string)
        ("no-span bytes unchanged: " ^ Message.describe msg)
        (Codec.encode msg)
        (Codec.encode_traced msg);
      Alcotest.(check string) "negative span means no span" (Codec.encode msg)
        (Codec.encode_traced ~span:Message.no_trace msg);
      (* Absent-field backward compatibility: old bytes, traced decoder. *)
      let m, span = Codec.decode_traced (Codec.encode msg) in
      Alcotest.(check bool) "old bytes decode" true (Message.equal msg m);
      Alcotest.(check int) "absent field is no_trace" Message.no_trace span)
    all_message_kinds;
  (* The plain decoder still rejects the trailing block: a tracing-on
     sender cannot talk to a strict tracing-unaware receiver by accident. *)
  (match Codec.decode (Codec.encode_traced ~span:7 (Message.Closed { flow = 1 })) with
  | _ -> Alcotest.fail "plain decode accepted a trace block"
  | exception Codec.Decode_error _ -> ());
  (* A trailing block with an unknown tag is rejected, not skipped. *)
  match Codec.decode_traced (Codec.encode (Message.Closed { flow = 1 }) ^ "\x02\x07") with
  | _ -> Alcotest.fail "unknown trailing tag accepted"
  | exception Codec.Decode_error _ -> ()

let prop_traced_codec_round_trip =
  QCheck.Test.make ~name:"traced codec round-trip (random messages, random spans)"
    ~count:300
    (QCheck.make
       QCheck.Gen.(pair gen_message (int_bound 0x3FFFFFFF))
       ~print:(fun (m, s) -> Printf.sprintf "%s span=%d" (Message.describe m) s))
    (fun (msg, span) ->
      let m, s = Codec.decode_traced (Codec.encode_traced ~span msg) in
      Message.equal msg m && s = span)

(* --- Latency model --- *)

let test_latency_calibration () =
  List.iter
    (fun (model, p99) ->
      Alcotest.(check (float 0.5)) "analytic p99" p99 (Latency_model.p99_us model))
    [
      (Latency_model.netlink_idle, 48.0);
      (Latency_model.unix_idle, 80.0);
      (Latency_model.netlink_busy, 18.0);
      (Latency_model.unix_busy, 35.0);
    ]

let test_latency_sampled_matches_analytic () =
  let model = Latency_model.calibrated ~median_us:12.0 ~p99_us:48.0 in
  let rng = Rng.create ~seed:11 in
  let samples = Stats.Samples.create () in
  for _ = 1 to 60_000 do
    Stats.Samples.add samples (Time_ns.to_float_us (Latency_model.sample model rng))
  done;
  Alcotest.(check bool) "median within 5%" true
    (Float.abs (Stats.Samples.median samples -. 12.0) < 0.6);
  Alcotest.(check bool) "p99 within 10%" true
    (Float.abs (Stats.Samples.percentile samples 99.0 -. 48.0) < 4.8)

let test_latency_constant_and_shifted () =
  let rng = Rng.create ~seed:1 in
  Alcotest.(check int) "constant" (Time_ns.us 5)
    (Latency_model.sample (Latency_model.Constant (Time_ns.us 5)) rng);
  let shifted =
    Latency_model.Shifted { base = Time_ns.us 10; rest = Latency_model.Constant (Time_ns.us 5) }
  in
  Alcotest.(check int) "shifted" (Time_ns.us 15) (Latency_model.sample shifted rng);
  Alcotest.(check (float 1e-9)) "shifted median" 15.0 (Latency_model.median_us shifted)

let test_latency_validation () =
  match Latency_model.calibrated ~median_us:50.0 ~p99_us:20.0 with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

(* --- Channel --- *)

let make_channel ?(latency = Latency_model.Constant (Time_ns.us 20)) () =
  let sim = Sim.create () in
  let channel = Channel.create ~sim ~latency () in
  (sim, channel)

let test_channel_delivery_and_latency () =
  let sim, channel = make_channel () in
  let received = ref [] in
  Channel.on_receive channel Channel.Agent_end (fun msg ->
      received := (Sim.now sim, msg) :: !received);
  Channel.on_receive channel Channel.Datapath_end (fun _ -> ());
  let msg = Message.Ready { flow = 1; mss = 1448; init_cwnd = 14480 } in
  Channel.send channel ~from:Channel.Datapath_end msg;
  Sim.run sim;
  match !received with
  | [ (at, got) ] ->
    (* One-way latency = half the 20 us round-trip model. *)
    Alcotest.(check int) "arrival" (Time_ns.us 10) at;
    Alcotest.(check bool) "content" true (Message.equal msg got)
  | _ -> Alcotest.fail "expected one delivery"

let test_channel_fifo_order () =
  let sim, channel = make_channel ~latency:(Latency_model.calibrated ~median_us:20.0 ~p99_us:200.0) () in
  let received = ref [] in
  Channel.on_receive channel Channel.Agent_end (fun msg ->
      received := Message.flow msg :: !received);
  for i = 0 to 49 do
    Channel.send channel ~from:Channel.Datapath_end (Message.Closed { flow = i })
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "in order despite random latency" (List.init 50 Fun.id)
    (List.rev !received)

let test_channel_stats () =
  let sim, channel = make_channel () in
  Channel.on_receive channel Channel.Agent_end (fun _ -> ());
  Channel.on_receive channel Channel.Datapath_end (fun _ -> ());
  Channel.send channel ~from:Channel.Datapath_end (Message.Closed { flow = 1 });
  Channel.send channel ~from:Channel.Agent_end (Message.Set_cwnd { flow = 1; bytes = 10 });
  Channel.send channel ~from:Channel.Agent_end (Message.Set_rate { flow = 1; bytes_per_sec = 1.0 });
  Sim.run sim;
  Alcotest.(check int) "datapath sent" 1 (Channel.messages_sent channel Channel.Datapath_end);
  Alcotest.(check int) "agent sent" 2 (Channel.messages_sent channel Channel.Agent_end);
  Alcotest.(check bool) "bytes counted" true (Channel.bytes_sent channel Channel.Agent_end > 0);
  Alcotest.(check int) "no decode failures" 0 (Channel.decode_failures channel)

let test_channel_requires_handler () =
  let _, channel = make_channel () in
  Alcotest.check_raises "unregistered destination"
    (Invalid_argument "Channel.send: destination handler not registered") (fun () ->
      Channel.send channel ~from:Channel.Datapath_end (Message.Closed { flow = 1 }))

(* --- Batch frames --- *)

let prop_batch_round_trip =
  QCheck.Test.make ~name:"batch frame round-trip (0..50 traced entries)" ~count:200
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 50)
           (pair gen_message (oneof [ return Message.no_trace; int_bound 0x3FFFFFFF ])))
       ~print:(fun entries ->
         String.concat "; "
           (List.map
              (fun (m, s) -> Printf.sprintf "%s span=%d" (Message.describe m) s)
              entries)))
    (fun entries ->
      let frame = Codec.encode_batch (Array.of_list entries) in
      Codec.is_batch frame
      &&
      let decoded = Codec.decode_batch frame in
      List.length entries = Array.length decoded
      && List.for_all2
           (fun (m, s) (m', s') -> Message.equal m m' && s = s')
           entries (Array.to_list decoded))

let test_batch_framing_disjoint () =
  (* No legacy encoding — traced or not — sniffs as a batch... *)
  List.iter
    (fun msg ->
      Alcotest.(check bool)
        ("not a batch: " ^ Message.describe msg)
        false
        (Codec.is_batch (Codec.encode msg));
      Alcotest.(check bool) "traced not a batch" false
        (Codec.is_batch (Codec.encode_traced ~span:7 msg)))
    all_message_kinds;
  (* ...and the framings reject each other rather than misparse. *)
  let frame = Codec.encode_batch [| (Message.Closed { flow = 3 }, Message.no_trace) |] in
  (match Codec.decode frame with
  | _ -> Alcotest.fail "legacy decode accepted a batch frame"
  | exception Codec.Decode_error _ -> ());
  (match Codec.decode_batch (Codec.encode (Message.Closed { flow = 3 })) with
  | _ -> Alcotest.fail "decode_batch accepted a single-message frame"
  | exception Codec.Decode_error _ -> ());
  (* Empty frames are legal; the entry bound is enforced both ways. *)
  Alcotest.(check int) "empty batch" 0 (Array.length (Codec.decode_batch (Codec.frame_batch [])));
  let entry = Codec.encode_traced (Message.Closed { flow = 1 }) in
  match Codec.frame_batch (List.init (Codec.max_batch_entries + 1) (fun _ -> entry)) with
  | _ -> Alcotest.fail "oversized batch accepted"
  | exception Invalid_argument _ -> ()

let batching ?(max_count = 3) ?(max_bytes = 1 lsl 20) ?(deadline = Time_ns.ms 1) () =
  { Channel.max_count; max_bytes; deadline }

let make_batching_channel ?max_count ?max_bytes ?deadline () =
  let sim = Sim.create () in
  let channel =
    Channel.create ~sim ~latency:(Latency_model.Constant (Time_ns.us 20))
      ~batching:(batching ?max_count ?max_bytes ?deadline ()) ()
  in
  let received = ref [] in
  Channel.on_receive channel Channel.Agent_end (fun msg -> received := msg :: !received);
  Channel.on_receive channel Channel.Datapath_end (fun _ -> ());
  (sim, channel, received)

let report flow = Message.Report { flow; fields = [| ("acked", 1448.0) |] }

let test_batch_count_watermark () =
  let sim, channel, received = make_batching_channel () in
  Channel.send channel ~from:Channel.Datapath_end (report 1);
  Channel.send channel ~from:Channel.Datapath_end (report 2);
  Alcotest.(check int) "parked below watermark" 2 (Channel.pending_reports channel);
  Alcotest.(check int) "nothing on the wire yet" 0
    (Channel.messages_sent channel Channel.Datapath_end);
  Channel.send channel ~from:Channel.Datapath_end (report 3);
  Alcotest.(check int) "flushed at count watermark" 0 (Channel.pending_reports channel);
  Alcotest.(check int) "one wire frame for three reports" 1
    (Channel.messages_sent channel Channel.Datapath_end);
  Sim.run sim;
  Alcotest.(check (list int)) "all delivered, send order" [ 1; 2; 3 ]
    (List.rev_map Message.flow !received);
  Alcotest.(check int) "batches_sent" 1 (Channel.batches_sent channel);
  Alcotest.(check int) "reports_batched" 3 (Channel.reports_batched channel)

let test_batch_deadline () =
  let sim, channel, received = make_batching_channel ~max_count:100 ~deadline:(Time_ns.us 200) () in
  Channel.send channel ~from:Channel.Datapath_end (report 9);
  Sim.run sim;
  (* Flushed by the deadline timer: 200 us parked + 10 us one-way. *)
  Alcotest.(check (list int)) "delivered by deadline" [ 9 ] (List.map Message.flow !received);
  Alcotest.(check int) "deadline flush counted" 1 (Channel.batches_sent channel);
  Alcotest.(check int) "flushed at deadline" (Time_ns.us 210) (Sim.now sim)

let test_batch_nonreport_flushes_first () =
  let sim, channel, received = make_batching_channel () in
  Channel.send channel ~from:Channel.Datapath_end (report 1);
  Channel.send channel ~from:Channel.Datapath_end (Message.Closed { flow = 1 });
  Alcotest.(check int) "pending frame forced out" 0 (Channel.pending_reports channel);
  Alcotest.(check int) "batch frame + bare close" 2
    (Channel.messages_sent channel Channel.Datapath_end);
  Sim.run sim;
  (match List.rev !received with
  | [ Message.Report { flow = 1; _ }; Message.Closed { flow = 1 } ] -> ()
  | _ -> Alcotest.fail "wire order must equal send order");
  (* Agent->datapath traffic never batches. *)
  Channel.send channel ~from:Channel.Agent_end (Message.Set_cwnd { flow = 1; bytes = 10 });
  Alcotest.(check int) "agent side sends immediately" 1
    (Channel.messages_sent channel Channel.Agent_end)

let test_batch_corrupt_frame () =
  let sim, channel, received = make_batching_channel () in
  (* Tag 10, count 2, then garbage: one atomic decode failure. *)
  Channel.deliver_raw channel ~toward:Channel.Agent_end "\x0a\x02junk";
  Alcotest.(check int) "corrupt batch counted once" 1 (Channel.decode_failures channel);
  Alcotest.(check (list int)) "no entries delivered" [] (List.map Message.flow !received);
  (* An absurd entry count is rejected before any allocation. *)
  let w = Wire.Writer.create () in
  Wire.Writer.byte w Codec.batch_tag;
  Wire.Writer.varint w 1_000_000;
  Channel.deliver_raw channel ~toward:Channel.Agent_end (Wire.Writer.contents w);
  Alcotest.(check int) "oversized count rejected" 2 (Channel.decode_failures channel);
  (* The channel survives: subsequent valid traffic still flows. *)
  Channel.deliver_raw channel ~toward:Channel.Agent_end
    (Codec.encode_batch [| (report 5, Message.no_trace) |]);
  Channel.send channel ~from:Channel.Datapath_end (Message.Closed { flow = 6 });
  Sim.run sim;
  Alcotest.(check (list int)) "channel still delivers" [ 5; 6 ]
    (List.rev_map Message.flow !received)

let test_batch_validation () =
  let sim = Sim.create () in
  List.iter
    (fun b ->
      match
        Channel.create ~sim ~latency:(Latency_model.Constant (Time_ns.us 20)) ~batching:b ()
      with
      | _ -> Alcotest.fail "nonsensical batching accepted"
      | exception Invalid_argument _ -> ())
    [
      batching ~max_count:0 ();
      batching ~max_bytes:0 ();
      batching ~deadline:Time_ns.zero ();
    ]

let suite =
  [
    ( "ipc.wire",
      [
        Alcotest.test_case "varint round-trip" `Quick test_varint_round_trip;
        Alcotest.test_case "varint compactness" `Quick test_varint_compact;
        Alcotest.test_case "varint negative" `Quick test_varint_rejects_negative;
        Alcotest.test_case "zigzag round-trip" `Quick test_zigzag_round_trip;
        Alcotest.test_case "float and string" `Quick test_float_and_string;
        Alcotest.test_case "truncation" `Quick test_reader_truncation;
        QCheck_alcotest.to_alcotest prop_wire_round_trip;
      ] );
    ( "ipc.codec",
      [
        Alcotest.test_case "round-trip all message kinds" `Quick test_codec_round_trip_all;
        Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        Alcotest.test_case "program round-trip" `Quick test_codec_program_round_trip;
        Alcotest.test_case "report size" `Quick test_codec_size_reasonable;
        QCheck_alcotest.to_alcotest prop_codec_round_trip;
        Alcotest.test_case "trace-context wire compatibility" `Quick
          test_traced_codec_compat;
        QCheck_alcotest.to_alcotest prop_traced_codec_round_trip;
      ] );
    ( "ipc.latency",
      [
        Alcotest.test_case "calibration" `Quick test_latency_calibration;
        Alcotest.test_case "sampled vs analytic" `Slow test_latency_sampled_matches_analytic;
        Alcotest.test_case "constant and shifted" `Quick test_latency_constant_and_shifted;
        Alcotest.test_case "validation" `Quick test_latency_validation;
      ] );
    ( "ipc.channel",
      [
        Alcotest.test_case "delivery and latency" `Quick test_channel_delivery_and_latency;
        Alcotest.test_case "fifo ordering" `Quick test_channel_fifo_order;
        Alcotest.test_case "statistics" `Quick test_channel_stats;
        Alcotest.test_case "handler required" `Quick test_channel_requires_handler;
      ] );
    ( "ipc.batch",
      [
        QCheck_alcotest.to_alcotest prop_batch_round_trip;
        Alcotest.test_case "framing disjoint from legacy" `Quick test_batch_framing_disjoint;
        Alcotest.test_case "count watermark" `Quick test_batch_count_watermark;
        Alcotest.test_case "deadline flush" `Quick test_batch_deadline;
        Alcotest.test_case "non-report flushes first" `Quick
          test_batch_nonreport_flushes_first;
        Alcotest.test_case "corrupt frame is atomic" `Quick test_batch_corrupt_frame;
        Alcotest.test_case "watermark validation" `Quick test_batch_validation;
      ] );
  ]
