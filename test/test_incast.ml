(* The incast scale-out scenario: byte-exact golden scorecard (seed 42),
   schema self-validation, the aggregate riding the fleet, and the
   batching knob's contract — wire traffic shrinks, dynamics stay put.

   The golden matrix is deliberately small (N in {4, 16}, 24 Mbit/s,
   1 s) so the whole suite stays fast; bin/ci.sh drives the larger
   fan-ins through the CLI. *)

open Ccp_util
module Incast = Ccp_core.Scenarios.Incast

let incast_scorecard =
  lazy
    (Incast.run ~rate_bps:24e6 ~base_rtt:(Time_ns.ms 10) ~duration:(Time_ns.sec 1)
       ~ns:[ 4; 16 ] ~seeds:[ 42 ] ())

let scorecard_line sc = Ccp_obs.Json.to_string (Incast.to_json sc)

let golden_path () =
  if Sys.file_exists "golden_incast.expected" then "golden_incast.expected"
  else "test/golden_incast.expected"

let test_golden_incast () =
  let sc = Lazy.force incast_scorecard in
  Alcotest.(check int) "2 Ns x 2 arrivals x 2 algorithms" 8 (List.length sc.Incast.cells);
  let actual = scorecard_line sc in
  (* The scorecard must be a pure function of its arguments: a second
     in-process run may not perturb or be perturbed by the first. *)
  let again =
    scorecard_line
      (Incast.run ~rate_bps:24e6 ~base_rtt:(Time_ns.ms 10) ~duration:(Time_ns.sec 1)
         ~ns:[ 4; 16 ] ~seeds:[ 42 ] ())
  in
  Alcotest.(check bool) "deterministic re-run" true (String.equal actual again);
  (* Regenerate with CCP_REGEN_INCAST=path/to/golden_incast.expected
     after an intentional schema or dynamics change. *)
  match Sys.getenv_opt "CCP_REGEN_INCAST" with
  | Some path ->
    let oc = open_out path in
    output_string oc (actual ^ "\n");
    close_out oc;
    Printf.printf "regenerated %s\n" path
  | None ->
    let ic = open_in (golden_path ()) in
    let expected = input_line ic in
    close_in ic;
    if not (String.equal expected actual) then begin
      let n = min (String.length expected) (String.length actual) in
      let rec first_diff i =
        if i >= n then n else if expected.[i] <> actual.[i] then i else first_diff (i + 1)
      in
      let i = first_diff 0 in
      let ctx s = String.sub s (max 0 (i - 40)) (min 80 (String.length s - max 0 (i - 40))) in
      Alcotest.failf
        "golden incast scorecard diverges at byte %d:\n  expected ...%s...\n  actual   ...%s..."
        i (ctx expected) (ctx actual)
    end

let test_incast_schema () =
  let sc = Lazy.force incast_scorecard in
  match Incast.validate_scorecard (Incast.to_json sc) with
  | Ok n -> Alcotest.(check int) "all cells validate" 8 n
  | Error e -> Alcotest.failf "incast scorecard fails its own schema: %s" e

(* Every cell, both algorithms: the control plane actually carried the
   fleet — flows registered without pool rejections, reports flowed,
   nothing failed to decode, and the link was not idle. *)
let test_incast_cell_sanity () =
  let sc = Lazy.force incast_scorecard in
  List.iter
    (fun (c : Incast.cell) ->
      let tag =
        Printf.sprintf "n=%d %s %s" c.n (Incast.arrival_to_string c.arrival) c.algo
      in
      Alcotest.(check int) (tag ^ ": no pool rejections") 0 c.pool_rejections;
      Alcotest.(check int) (tag ^ ": no decode failures") 0 c.decode_failures;
      Alcotest.(check bool) (tag ^ ": reports flowed") true (c.reports > 0);
      Alcotest.(check bool) (tag ^ ": batch frames used") true (c.batches > 0);
      Alcotest.(check bool) (tag ^ ": link not idle") true (c.utilization > 0.0))
    sc.Incast.cells;
  (* The aggregate enrolled the whole fleet as members of one window:
     its cells are present for every N. *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "aggregate cell at n=%d" n)
        true
        (List.exists
           (fun (c : Incast.cell) -> c.algo = "ccp-aggregate" && c.n = n)
           sc.Incast.cells))
    [ 4; 16 ]

(* The batching knob's contract, measured in closed loop at N=32: fewer
   wire frames for the same reports, and turning it off produces zero
   batch frames (the original one-frame-per-message channel). *)
let run_n32 ~batching =
  Incast.run_cell ~rate_bps:24e6 ~base_rtt:(Time_ns.ms 10)
    ~duration:(Time_ns.of_float_sec 0.5) ~batching ~seed:42 ~n:32
    ~arrival:Incast.Synchronized ~algo:"ccp-reno" ()

let test_batching_wire_amortization () =
  let on = run_n32 ~batching:true and off = run_n32 ~batching:false in
  Alcotest.(check int) "off: no batch frames" 0 off.Incast.batches;
  Alcotest.(check bool) "on: reports coalesced" true (on.Incast.batches > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fewer frames batched (%d) than unbatched (%d)" on.Incast.wire_messages
       off.Incast.wire_messages)
    true
    (on.Incast.wire_messages < off.Incast.wire_messages);
  (* Batching is allowed to move wire bytes, never to reach into the
     dynamics' RNG streams: both runs stay healthy and fully enrolled. *)
  List.iter
    (fun (c : Incast.cell) ->
      Alcotest.(check int) "no rejections" 0 c.Incast.pool_rejections;
      Alcotest.(check bool) "link busy" true (c.Incast.utilization > 0.2))
    [ on; off ]

let suite =
  [
    ( "incast.scenario",
      [
        Alcotest.test_case "golden scorecard" `Quick test_golden_incast;
        Alcotest.test_case "scorecard schema" `Quick test_incast_schema;
        Alcotest.test_case "cell sanity" `Quick test_incast_cell_sanity;
        Alcotest.test_case "batching wire amortization" `Quick
          test_batching_wire_amortization;
      ] );
  ]
