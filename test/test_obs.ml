(* The observability layer: metrics registry, flight recorder, JSON
   sinks, and the zero-cost-when-disabled guarantee the datapath's
   per-ACK path depends on. *)

open Ccp_util
open Ccp_obs

(* --- metrics: counters --- *)

let test_counters_monotone () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~unit_:"msgs" "ipc.sent" in
  let b = Metrics.counter m ~unit_:"msgs" "ipc.received" in
  (* Get-or-create: asking again by name yields the same cell. *)
  let a' = Metrics.counter m "ipc.sent" in
  let prev = ref (-1) in
  for i = 1 to 100 do
    Metrics.incr a;
    if i mod 3 = 0 then Metrics.add b 2;
    if i mod 7 = 0 then Metrics.incr a';
    let v = Metrics.counter_value a in
    Alcotest.(check bool) "monotone" true (v > !prev);
    prev := v
  done;
  Alcotest.(check int) "interleaved incrs all landed" (100 + 14) (Metrics.counter_value a);
  Alcotest.(check int) "second counter independent" 66 (Metrics.counter_value b);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "ipc.sent already registered as a non-gauge") (fun () ->
      ignore (Metrics.gauge m "ipc.sent"))

let test_gauge () =
  let m = Metrics.create () in
  let g = Metrics.gauge m ~unit_:"bytes" "queue.depth" in
  Metrics.set g 1234.0;
  Metrics.set g 99.5;
  Alcotest.(check (float 0.0)) "last write wins" 99.5 (Metrics.gauge_value g)

(* --- metrics: histogram vs exact percentiles --- *)

(* The histogram's quantile estimate interpolates inside a bucket, so it
   can be off from the exact sample percentile by at most the width of
   the bucket holding that percentile. *)
let bucket_width v =
  let bounds = Metrics.default_bounds in
  let n = Array.length bounds in
  let rec find i = if i < n && v > bounds.(i) then find (i + 1) else i in
  let i = find 0 in
  if i >= n then infinity
  else if i = 0 then bounds.(0)
  else bounds.(i) -. bounds.(i - 1)

let test_histogram_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~unit_:"ns" "probe.latency" in
  let exact = Stats.Samples.create () in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 10_000 do
    (* Log-uniform over ~[1, 2.2e4]: exercises many buckets. *)
    let v = exp (Random.State.float rng 10.0) in
    Metrics.observe h v;
    Stats.Samples.add exact v
  done;
  Alcotest.(check int) "observation count" 10_000 (Metrics.observations h);
  List.iter
    (fun q ->
      let est = Metrics.quantile h q in
      let truth = Stats.Samples.percentile exact (100.0 *. q) in
      let err = Float.abs (est -. truth) in
      if err > bucket_width truth +. 1e-9 then
        Alcotest.failf "q=%.2f: histogram %.1f vs exact %.1f (err %.1f > bucket %.1f)" q est
          truth err (bucket_width truth))
    [ 0.5; 0.9; 0.99 ];
  let mean_err = Float.abs (Metrics.hist_mean h -. Stats.Samples.mean exact) in
  Alcotest.(check bool) "mean tracked exactly (from the sum)" true (mean_err < 1e-6)

(* --- recorder: ring bounds and drop accounting --- *)

let test_ring_drops () =
  let r = Recorder.create ~capacity:8 () in
  Alcotest.(check int) "capacity" 8 (Recorder.capacity r);
  for i = 0 to 19 do
    Recorder.record r ~at:i (Recorder.Custom { name = "tick"; value = float_of_int i })
  done;
  Alcotest.(check int) "length is capped" 8 (Recorder.length r);
  Alcotest.(check int) "recorded counts everything" 20 (Recorder.recorded r);
  Alcotest.(check int) "dropped is exact" 12 (Recorder.dropped r);
  let held = Recorder.to_list r in
  Alcotest.(check (list int)) "oldest-first survivors"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map fst held)

let test_ring_no_drops_under_capacity () =
  let r = Recorder.create ~capacity:8 () in
  for i = 0 to 4 do
    Recorder.record r ~at:i (Recorder.Queue_sample { bytes = i })
  done;
  Alcotest.(check int) "length" 5 (Recorder.length r);
  Alcotest.(check int) "dropped" 0 (Recorder.dropped r)

(* --- JSON: sinks parse back --- *)

let every_event_kind =
  [
    Recorder.Flow_sample
      { flow = 0; cwnd = 14480; rate = 1.5e6; srtt_us = 10250.5; inflight = 5000;
        delivery_rate = 1.2e6 };
    Recorder.Queue_sample { bytes = 42_000 };
    Recorder.Install { flow = 1; accepted = false; detail = "limit \"exceeded\"\n" };
    Recorder.Quarantine { flow = 2; incidents = 25; dominant = "cwnd_clamped" };
    Recorder.Fallback { flow = 0; entered = true };
    Recorder.Report_sent { flow = 0; urgent = true };
    Recorder.Ipc_fault { kind = "drop" };
    Recorder.Span
      { id = 7; flow = 1; kind = "report"; disposition = "actuated"; started_at = 0;
        sent_at = 100; agent_at = 20_100; action_at = 20_600; done_at = 41_000;
        summarize_ns = 310.0; handler_ns = 1200.0; apply_ns = 55.5 };
    Recorder.Alert
      { slo = "orphan_rate"; state = "firing"; burn_short = 34.6; burn_long = 18.5 };
    Recorder.Custom { name = "note"; value = nan };
  ]

let test_jsonl_round_trip () =
  let r = Recorder.create ~capacity:16 () in
  List.iteri (fun i ev -> Recorder.record r ~at:(i * 1_000_000) ev) every_event_kind;
  let lines =
    Recorder.to_jsonl r |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" (List.length every_event_kind) (List.length lines);
  let kinds =
    List.map
      (fun line ->
        match Json.parse line with
        | Error e -> Alcotest.failf "unparseable line %S: %s" line e
        | Ok j -> (
          match Json.member "ev" j with
          | Some (Json.Str k) -> k
          | _ -> Alcotest.failf "no \"ev\" in %S" line))
      lines
  in
  Alcotest.(check (list string)) "event kinds in order"
    [ "flow_sample"; "queue_sample"; "install"; "quarantine"; "fallback"; "report";
      "ipc_fault"; "span"; "alert"; "custom" ]
    kinds;
  (* The NaN value must not produce invalid JSON. *)
  let last = List.nth lines (List.length lines - 1) in
  (match Json.parse last with
  | Ok j -> Alcotest.(check bool) "nan became null" true (Json.member "value" j = Some Json.Null)
  | Error e -> Alcotest.failf "custom event line: %s" e);
  (* Timestamps survive as seconds. *)
  match Json.parse (List.nth lines 3) with
  | Ok j -> (
    match Json.member "t" j with
    | Some (Json.Num t) -> Alcotest.(check (float 1e-12)) "t in seconds" 0.003 t
    | _ -> Alcotest.fail "no numeric t")
  | Error e -> Alcotest.failf "quarantine line: %s" e

let test_flow_samples_csv () =
  let r = Recorder.create ~capacity:16 () in
  Recorder.record r ~at:0 (Recorder.Queue_sample { bytes = 1 });
  Recorder.record r ~at:1_000_000_000
    (Recorder.Flow_sample
       { flow = 3; cwnd = 20_000; rate = 125_000.0; srtt_us = 9_000.0; inflight = 10_000;
         delivery_rate = 100_000.0 });
  let csv = Recorder.flow_samples_csv r in
  match String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") with
  | [ header; row ] ->
    Alcotest.(check string) "header"
      "time_s,flow,cwnd_bytes,rate_bps,srtt_us,inflight_bytes,delivery_rate_bps" header;
    (match String.split_on_char ',' row with
    | [ t; flow; cwnd; rate; _; _; drate ] ->
      Alcotest.(check (float 1e-9)) "time" 1.0 (float_of_string t);
      Alcotest.(check string) "flow" "3" flow;
      Alcotest.(check string) "cwnd" "20000" cwnd;
      (* Rates are bytes/s internally, bits/s in the CSV. *)
      Alcotest.(check (float 1e-3)) "rate in bits" 1e6 (float_of_string rate);
      Alcotest.(check (float 1e-3)) "delivery rate in bits" 8e5 (float_of_string drate)
    | _ -> Alcotest.fail "row shape")
  | _ -> Alcotest.fail "expected exactly header + one Flow_sample row"

(* --- the BENCH.json schema --- *)

let test_rows_schema () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m ~unit_:"msgs" "a.count");
  Metrics.set (Metrics.gauge m ~unit_:"bytes" "b.depth") 17.0;
  Metrics.observe (Metrics.histogram m ~unit_:"ns" "c.lat") 3.0;
  let rows = Metrics.snapshot m in
  (* Histograms expand into _count/_mean/_p50/_p90/_p99. *)
  Alcotest.(check int) "row count" 7 (List.length rows);
  let json = Metrics.rows_to_json rows in
  (match Metrics.validate_rows_json json with
  | Ok n -> Alcotest.(check int) "validator sees every row" 7 n
  | Error e -> Alcotest.failf "schema rejected its own snapshot: %s" e);
  (* Round-trip through text, as bench/main.exe writes it. *)
  (match Json.parse (Json.to_string json) with
  | Ok j -> (
    match Metrics.validate_rows_json j with
    | Ok 7 -> ()
    | Ok n -> Alcotest.failf "round-trip changed row count to %d" n
    | Error e -> Alcotest.failf "round-trip broke the schema: %s" e)
  | Error e -> Alcotest.failf "snapshot JSON unparseable: %s" e);
  (* Malformed shapes are rejected. *)
  List.iter
    (fun (label, text) ->
      match Json.parse text with
      | Error _ -> ()
      | Ok j -> (
        match Metrics.validate_rows_json j with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s passed validation" label))
    [
      ("object instead of list", "{\"name\":\"x\"}");
      ("row without value", "[{\"name\":\"x\",\"unit\":\"ns\"}]");
      ("non-string name", "[{\"name\":3,\"value\":1,\"unit\":\"ns\"}]");
    ]

(* --- fidelity math --- *)

let test_fidelity_math () =
  let series v = Array.init 11 (fun i -> (float_of_int i, v)) in
  let run series = { Fidelity.series; utilization = 0.9; median_rtt_ms = 20.0 } in
  let same = Fidelity.compare_runs ~ccp:(run (series 100.0)) ~native:(run (series 100.0)) () in
  Alcotest.(check (float 1e-12)) "identical series: zero RMSE" 0.0 same.Fidelity.cwnd_rmse;
  Alcotest.(check (float 1e-12)) "identical runs: zero deltas" 0.0
    same.Fidelity.utilization_delta;
  let off = Fidelity.compare_runs ~ccp:(run (series 110.0)) ~native:(run (series 100.0)) () in
  (* Constant 10% offset, normalized by the native mean. *)
  Alcotest.(check (float 1e-9)) "normalized RMSE" 0.1 off.Fidelity.cwnd_rmse;
  Alcotest.check_raises "empty series rejected"
    (Invalid_argument "Fidelity.compare_runs: empty ccp series") (fun () ->
      ignore (Fidelity.compare_runs ~ccp:(run [||]) ~native:(run (series 1.0)) ()))

(* --- zero cost when disabled: the per-ACK path must not allocate --- *)

let fake_ctl sim ~flow =
  let cwnd = ref 140_000 and rate = ref 0.0 in
  (* Preallocated options: the ctl contributes nothing to the Gc delta,
     so the assertion below isolates the datapath's own path. *)
  let srtt = Some (Time_ns.ms 10) and latest = Some (Time_ns.ms 11) in
  let send_rate = Some 1e6 and delivery = Some 9e5 in
  let ctl : Ccp_datapath.Congestion_iface.ctl =
    {
      flow;
      mss = 1448;
      now = (fun () -> Ccp_eventsim.Sim.now sim);
      get_cwnd = (fun () -> !cwnd);
      set_cwnd = (fun b -> cwnd := max 1448 b);
      get_rate = (fun () -> !rate);
      set_rate = (fun r -> rate := r);
      srtt = (fun () -> srtt);
      latest_rtt = (fun () -> latest);
      min_rtt = (fun () -> srtt);
      inflight = (fun () -> 5000);
      send_rate_ewma = (fun () -> send_rate);
      delivery_rate_ewma = (fun () -> delivery);
    }
  in
  ctl

let classic_program =
  "Measure(fold { init { acked = 0; minrtt = 1e12 } update { acked = acked + \
   pkt.bytes_acked; minrtt = min(minrtt, pkt.rtt_us) } }).Cwnd(cwnd + 2 * \
   mss).WaitRtts(1.0).Report()"

let ccp_flow_under_program ?obs () =
  let sim = Ccp_eventsim.Sim.create () in
  let channel =
    Ccp_ipc.Channel.create ~sim ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 20))
      ?obs ()
  in
  let ext = Ccp_datapath.Ccp_ext.create ~sim ~channel ?obs () in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun _ -> ());
  let ctl = fake_ctl sim ~flow:1 in
  let cc = Ccp_datapath.Ccp_ext.congestion_control ext in
  cc.Ccp_datapath.Congestion_iface.on_init ctl;
  Ccp_eventsim.Sim.run sim;
  Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
    (Ccp_ipc.Message.Install { flow = 1; program = Ccp_lang.Parser.parse_program classic_program });
  Ccp_eventsim.Sim.run ~until:(Time_ns.add (Ccp_eventsim.Sim.now sim) (Time_ns.ms 5)) sim;
  (ext, cc, ctl)

let ack_event : Ccp_datapath.Congestion_iface.ack_event =
  {
    now = Time_ns.ms 50;
    bytes_acked = 1448;
    rtt_sample = Some (Time_ns.ms 11);
    ecn_echo = false;
    send_rate = Some 1e6;
    delivery_rate = Some 9e5;
    inflight_after = 5000;
  }

let test_on_ack_zero_alloc_when_disabled () =
  let ext, cc, ctl = ccp_flow_under_program () in
  (* Warm up: first calls may fault in lazy state. *)
  for _ = 1 to 100 do
    cc.Ccp_datapath.Congestion_iface.on_ack ctl ack_event
  done;
  let words0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    cc.Ccp_datapath.Congestion_iface.on_ack ctl ack_event
  done;
  let delta = Gc.minor_words () -. words0 in
  if delta > 100.0 then
    Alcotest.failf "obs-off per-ACK path allocated %.0f minor words over 10k ACKs" delta;
  ignore ext

let test_on_ack_counts_when_enabled () =
  let obs = Obs.create () in
  let _, cc, ctl = ccp_flow_under_program ~obs () in
  for _ = 1 to 50 do
    cc.Ccp_datapath.Congestion_iface.on_ack ctl ack_event
  done;
  let acks = Metrics.counter obs.Obs.metrics "datapath.acks_processed" in
  Alcotest.(check int) "acks counted" 50 (Metrics.counter_value acks);
  let fold_ns = Metrics.histogram obs.Obs.metrics "datapath.fold_step_ns" in
  Alcotest.(check int) "every fold step timed" 50 (Metrics.observations fold_ns);
  (* The recorder saw the install (twice: Ready handshake is not an
     install; accepted install exactly once). *)
  let installs =
    List.filter
      (fun (_, ev) -> match ev with Recorder.Install _ -> true | _ -> false)
      (Recorder.to_list (Obs.recorder_exn obs))
  in
  Alcotest.(check int) "install recorded" 1 (List.length installs)

(* --- tracer: span pool, lifecycle accounting, staleness --- *)

let fresh_tracer ?(capacity = 8) ?recorder () =
  let metrics = Metrics.create () in
  let wall = ref 0.0 in
  let clock () =
    wall := !wall +. 100.0;
    !wall
  in
  Tracer.create ~capacity ~metrics ?recorder ~clock ()

let check_stats_invariant label tr =
  let s = Tracer.stats tr in
  Alcotest.(check int)
    (label ^ ": started = finalized + live")
    s.Tracer.started
    (s.Tracer.actuated + s.Tracer.no_action + s.Tracer.rejected + s.Tracer.orphaned
   + s.Tracer.shed + s.Tracer.live);
  Alcotest.(check int)
    (label ^ ": free slots = capacity - live")
    (Tracer.pool_capacity tr - s.Tracer.live)
    (Tracer.free_slots tr)

let test_tracer_lifecycle () =
  let r = Recorder.create ~capacity:16 () in
  let tr = fresh_tracer ~recorder:r () in
  let s = Tracer.start tr ~now:0 ~flow:3 ~kind:Tracer.Report_span in
  Alcotest.(check bool) "got a span" true (s >= 0);
  Alcotest.(check int) "one live span" 1 (Tracer.live_spans tr);
  Tracer.sent tr s ~now:1_000;
  Tracer.arrived tr s ~now:21_000;
  Tracer.handler_begin tr s;
  Alcotest.(check int) "active while handler runs" s (Tracer.active tr);
  Tracer.note_send tr s ~now:22_000;
  Alcotest.(check int) "consumed spans are no longer active" Tracer.no_span
    (Tracer.active tr);
  Tracer.handler_end tr s ~now:22_000;
  Tracer.finish tr s ~now:43_000 ~disposition:Tracer.Actuated ~apply_ns:55.0;
  let st = Tracer.stats tr in
  Alcotest.(check int) "started" 1 st.Tracer.started;
  Alcotest.(check int) "actuated" 1 st.Tracer.actuated;
  Alcotest.(check int) "nothing live" 0 st.Tracer.live;
  check_stats_invariant "after lifecycle" tr;
  match Recorder.to_list r with
  | [ (at, Recorder.Span sp) ] ->
    Alcotest.(check int) "recorded at finalization time" 43_000 at;
    Alcotest.(check int) "flow" 3 sp.Recorder.flow;
    Alcotest.(check string) "kind" "report" sp.Recorder.kind;
    Alcotest.(check string) "disposition" "actuated" sp.Recorder.disposition;
    Alcotest.(check int) "sent_at" 1_000 sp.Recorder.sent_at;
    Alcotest.(check int) "agent_at" 21_000 sp.Recorder.agent_at;
    Alcotest.(check int) "action_at" 22_000 sp.Recorder.action_at;
    Alcotest.(check int) "done_at" 43_000 sp.Recorder.done_at;
    Alcotest.(check bool) "summarize cost measured" true (sp.Recorder.summarize_ns > 0.0);
    Alcotest.(check (float 1e-9)) "apply cost carried" 55.0 sp.Recorder.apply_ns
  | evs -> Alcotest.failf "expected exactly one Span event, got %d" (List.length evs)

let test_tracer_stale_after_finish () =
  let tr = fresh_tracer () in
  let s = Tracer.start tr ~now:0 ~flow:1 ~kind:Tracer.Urgent_span in
  Tracer.finish tr s ~now:10 ~disposition:Tracer.No_action ~apply_ns:0.0;
  (* The slot is free again; the old token must not touch its reuse. *)
  Tracer.sent tr s ~now:20;
  Tracer.finish tr s ~now:30 ~disposition:Tracer.Actuated ~apply_ns:0.0;
  let st = Tracer.stats tr in
  Alcotest.(check int) "stale refs counted" 2 st.Tracer.stale_refs;
  Alcotest.(check int) "no double finalization" 0 st.Tracer.actuated;
  (* Negative tokens mean "no span" and are not stale. *)
  Tracer.sent tr Ccp_ipc.Message.no_trace ~now:40;
  Alcotest.(check int) "no_span is silently ignored" 2 (Tracer.stats tr).Tracer.stale_refs;
  check_stats_invariant "after stale refs" tr

let test_tracer_pool_exhaustion () =
  let tr = fresh_tracer ~capacity:4 () in
  let spans = List.init 4 (fun i -> Tracer.start tr ~now:i ~flow:i ~kind:Tracer.Report_span) in
  List.iter (fun s -> Alcotest.(check bool) "pooled span" true (s >= 0)) spans;
  Alcotest.(check int) "pool drained" 0 (Tracer.free_slots tr);
  let overflow = Tracer.start tr ~now:9 ~flow:9 ~kind:Tracer.Report_span in
  Alcotest.(check int) "exhausted pool yields no_span" Tracer.no_span overflow;
  Alcotest.(check int) "drop counted" 1 (Tracer.stats tr).Tracer.dropped;
  check_stats_invariant "exhausted" tr;
  (* Freeing one slot makes start succeed again. *)
  Tracer.orphan tr (List.hd spans) ~now:10;
  let again = Tracer.start tr ~now:11 ~flow:11 ~kind:Tracer.Report_span in
  Alcotest.(check bool) "slot recycled" true (again >= 0);
  check_stats_invariant "recycled" tr

let test_tracer_handler_end_finalizes_unconsumed () =
  let tr = fresh_tracer () in
  let s = Tracer.start tr ~now:0 ~flow:1 ~kind:Tracer.Report_span in
  Tracer.sent tr s ~now:100;
  Tracer.arrived tr s ~now:200;
  Tracer.handler_begin tr s;
  (* The handler sends nothing back: the span ends as No_action here. *)
  Tracer.handler_end tr s ~now:300;
  let st = Tracer.stats tr in
  Alcotest.(check int) "no_action" 1 st.Tracer.no_action;
  Alcotest.(check int) "nothing live" 0 st.Tracer.live;
  Alcotest.(check int) "not active" Tracer.no_span (Tracer.active tr);
  check_stats_invariant "unconsumed handler" tr

let test_tracer_first_arrival_wins () =
  let r = Recorder.create ~capacity:4 () in
  let tr = fresh_tracer ~recorder:r () in
  let s = Tracer.start tr ~now:0 ~flow:1 ~kind:Tracer.Report_span in
  Tracer.sent tr s ~now:50;
  Tracer.arrived tr s ~now:500;
  (* A duplicated delivery arrives later; the span keeps the first. *)
  Tracer.arrived tr s ~now:900;
  Tracer.finish tr s ~now:1_000 ~disposition:Tracer.Actuated ~apply_ns:0.0;
  match Recorder.to_list r with
  | [ (_, Recorder.Span sp) ] ->
    Alcotest.(check int) "first arrival kept" 500 sp.Recorder.agent_at
  | _ -> Alcotest.fail "expected one Span event"

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counters monotone under interleaving" `Quick test_counters_monotone;
        Alcotest.test_case "gauge holds last value" `Quick test_gauge;
        Alcotest.test_case "histogram quantiles within bucket error" `Quick
          test_histogram_quantiles;
        Alcotest.test_case "ring drop accounting is exact" `Quick test_ring_drops;
        Alcotest.test_case "ring under capacity drops nothing" `Quick
          test_ring_no_drops_under_capacity;
        Alcotest.test_case "JSONL sink parses back" `Quick test_jsonl_round_trip;
        Alcotest.test_case "flow-sample CSV shape" `Quick test_flow_samples_csv;
        Alcotest.test_case "BENCH.json rows schema" `Quick test_rows_schema;
        Alcotest.test_case "fidelity math" `Quick test_fidelity_math;
        Alcotest.test_case "per-ACK path allocation-free with obs off" `Quick
          test_on_ack_zero_alloc_when_disabled;
        Alcotest.test_case "per-ACK metrics with obs on" `Quick test_on_ack_counts_when_enabled;
        Alcotest.test_case "tracer lifecycle lands in the recorder" `Quick
          test_tracer_lifecycle;
        Alcotest.test_case "tracer stale tokens counted, not corrupting" `Quick
          test_tracer_stale_after_finish;
        Alcotest.test_case "tracer pool exhaustion drops, then recycles" `Quick
          test_tracer_pool_exhaustion;
        Alcotest.test_case "tracer handler_end finalizes unconsumed spans" `Quick
          test_tracer_handler_end_finalizes_unconsumed;
        Alcotest.test_case "tracer first arrival wins under duplication" `Quick
          test_tracer_first_arrival_wins;
      ] );
  ]
