(* Tests for the features built from the paper's §5 "further research"
   list: the safe-fallback watchdog, jitter/reordering tolerance,
   time-varying (cellular) links, and congestion-manager-style
   aggregation. *)

open Ccp_util
open Ccp_eventsim
open Ccp_net
open Ccp_datapath
open Ccp_core

(* --- watchdog fallback --- *)

let fake_ctl sim ~flow =
  let cwnd = ref 14_480 and rate = ref 777.0 in
  let ctl : Congestion_iface.ctl =
    {
      flow;
      mss = 1448;
      now = (fun () -> Sim.now sim);
      get_cwnd = (fun () -> !cwnd);
      set_cwnd = (fun b -> cwnd := max 1448 b);
      get_rate = (fun () -> !rate);
      set_rate = (fun r -> rate := r);
      srtt = (fun () -> Some (Time_ns.ms 10));
      latest_rtt = (fun () -> Some (Time_ns.ms 11));
      min_rtt = (fun () -> Some (Time_ns.ms 10));
      inflight = (fun () -> 0);
      send_rate_ewma = (fun () -> None);
      delivery_rate_ewma = (fun () -> None);
    }
  in
  (ctl, cwnd, rate)

let watchdog_env () =
  let sim = Sim.create () in
  let channel =
    Ccp_ipc.Channel.create ~sim ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 20)) ()
  in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun _ -> ());
  let config =
    {
      Ccp_ext.default_config with
      fallback = Some (Ccp_ext.clamp_fallback ~after:(Time_ns.ms 100) ~cwnd_segments:4);
    }
  in
  let ext = Ccp_ext.create ~sim ~channel ~config () in
  (sim, channel, ext)

let test_watchdog_triggers_on_silence () =
  let sim, _, ext = watchdog_env () in
  let ctl, cwnd, rate = fake_ctl sim ~flow:1 in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init ctl;
  Sim.run ~until:(Time_ns.ms 350) sim;
  Alcotest.(check bool) "fallback active" true (Ccp_ext.in_fallback ext ~flow:1);
  Alcotest.(check int) "fallback triggered once" 1 (Ccp_ext.fallbacks_triggered ext);
  Alcotest.(check int) "conservative window" (4 * 1448) !cwnd;
  Alcotest.(check (float 1e-9)) "pacing disabled" 0.0 !rate

let test_watchdog_lifted_by_agent_message () =
  let sim, channel, ext = watchdog_env () in
  let ctl, cwnd, _ = fake_ctl sim ~flow:1 in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init ctl;
  Sim.run ~until:(Time_ns.ms 350) sim;
  Alcotest.(check bool) "in fallback" true (Ccp_ext.in_fallback ext ~flow:1);
  Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
    (Ccp_ipc.Message.Set_cwnd { flow = 1; bytes = 60_000 });
  Sim.run ~until:(Time_ns.ms 360) sim;
  Alcotest.(check bool) "lifted" false (Ccp_ext.in_fallback ext ~flow:1);
  Alcotest.(check int) "agent window applied" 60_000 !cwnd

let test_watchdog_quiet_while_agent_talks () =
  let sim, channel, ext = watchdog_env () in
  let ctl, _, _ = fake_ctl sim ~flow:1 in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init ctl;
  (* Keep poking the datapath every 50 ms < the 100 ms threshold. *)
  let rec poke at =
    if Time_ns.compare at (Time_ns.ms 500) < 0 then
      ignore
        (Sim.schedule sim ~at (fun () ->
             Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
               (Ccp_ipc.Message.Set_cwnd { flow = 1; bytes = 30_000 });
             poke (Time_ns.add at (Time_ns.ms 50))))
  in
  poke (Time_ns.ms 10);
  Sim.run ~until:(Time_ns.ms 500) sim;
  Alcotest.(check int) "never triggered" 0 (Ccp_ext.fallbacks_triggered ext)

let test_watchdog_in_full_experiment () =
  (* An agent whose algorithm never answers: without the watchdog the flow
     would crawl at the 10-segment initial window forever; with it the
     flow keeps moving at the fallback window. *)
  let silent = { Ccp_agent.Algorithm.name = "silent"; make = (fun _ -> Ccp_agent.Algorithm.no_op_handlers) } in
  let base = Experiment.default_config ~rate_bps:20e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 5) in
  let config =
    {
      base with
      Experiment.datapath =
        {
          Ccp_ext.default_config with
          fallback = Some (Ccp_ext.clamp_fallback ~after:(Time_ns.ms 200) ~cwnd_segments:20);
        };
      flows = [ Experiment.flow (Experiment.Ccp_cc silent) ];
    }
  in
  let r = Experiment.run config in
  (* 20 segments x 1448 / 20ms = ~1.45 MB/s = 11.6 Mbit/s of 20. *)
  let goodput = (List.hd r.Experiment.flows).Experiment.goodput_bps in
  Alcotest.(check bool)
    (Printf.sprintf "fallback keeps traffic flowing (%.1f Mbit/s)" (goodput /. 1e6))
    true
    (goodput > 8e6 && goodput < 14e6)

(* --- native in-datapath fallback --- *)

let counting_cc () =
  (* A deterministic stand-in controller: fixed window on init, +1 MSS per
     ACK, halve on loss. Lets the tests see exactly who is driving. *)
  let acks = ref 0 and losses = ref 0 in
  let cc : Congestion_iface.t =
    {
      name = "counting";
      on_init = (fun ctl -> ctl.Congestion_iface.set_cwnd (10 * ctl.Congestion_iface.mss));
      on_ack =
        (fun ctl _ev ->
          incr acks;
          ctl.Congestion_iface.set_cwnd
            (ctl.Congestion_iface.get_cwnd () + ctl.Congestion_iface.mss));
      on_loss =
        (fun ctl _ev ->
          incr losses;
          ctl.Congestion_iface.set_cwnd (ctl.Congestion_iface.get_cwnd () / 2));
      on_exit_recovery = (fun _ -> ());
    }
  in
  (cc, acks, losses)

let native_env () =
  let sim = Sim.create () in
  let channel =
    Ccp_ipc.Channel.create ~sim ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 20)) ()
  in
  let to_agent = ref [] in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun m ->
      to_agent := m :: !to_agent);
  let acks = ref (ref 0) and losses = ref (ref 0) in
  let make_cc () =
    let cc, a, l = counting_cc () in
    acks := a;
    losses := l;
    cc
  in
  let config =
    {
      Ccp_ext.default_config with
      fallback = Some (Ccp_ext.native_fallback ~after:(Time_ns.ms 100) make_cc);
    }
  in
  let ext = Ccp_ext.create ~sim ~channel ~config () in
  (sim, channel, ext, to_agent, acks, losses)

let ack_event sim : Congestion_iface.ack_event =
  {
    Congestion_iface.now = Sim.now sim;
    bytes_acked = 1448;
    rtt_sample = Some (Time_ns.ms 10);
    ecn_echo = false;
    send_rate = None;
    delivery_rate = None;
    inflight_after = 0;
  }

let test_native_fallback_takes_over () =
  let sim, _, ext, to_agent, acks, _ = native_env () in
  let ctl, cwnd, _ = fake_ctl sim ~flow:1 in
  let iface = Ccp_ext.congestion_control ext in
  iface.Congestion_iface.on_init ctl;
  Alcotest.(check bool)
    "awaiting agent before silence" true
    (Ccp_ext.controller ext ~flow:1 = Some Ccp_ext.Awaiting_agent);
  Sim.run ~until:(Time_ns.ms 350) sim;
  Alcotest.(check bool)
    "native controller active" true
    (Ccp_ext.controller ext ~flow:1 = Some Ccp_ext.Native_fallback);
  Alcotest.(check int) "native on_init set the window" (10 * 1448) !cwnd;
  iface.Congestion_iface.on_ack ctl (ack_event sim);
  iface.Congestion_iface.on_ack ctl (ack_event sim);
  Alcotest.(check int) "native cc saw the ACKs" 2 !(!acks);
  Alcotest.(check int) "and grew the window" (12 * 1448) !cwnd;
  let ready =
    List.length
      (List.filter
         (function Ccp_ipc.Message.Ready _ -> true | _ -> false)
         !to_agent)
  in
  Alcotest.(check bool)
    (Printf.sprintf "re-handshake probes sent (%d)" ready)
    true (ready >= 2);
  (* One Ready is the flow's original registration; the rest are probes. *)
  Alcotest.(check int) "probe counter matches" (ready - 1) (Ccp_ext.fallback_probes_sent ext)

let test_native_fallback_hands_back_on_recovery () =
  let sim, channel, ext, _, acks, _ = native_env () in
  let ctl, cwnd, _ = fake_ctl sim ~flow:1 in
  let iface = Ccp_ext.congestion_control ext in
  iface.Congestion_iface.on_init ctl;
  Sim.run ~until:(Time_ns.ms 350) sim;
  Alcotest.(check bool)
    "in native fallback" true
    (Ccp_ext.controller ext ~flow:1 = Some Ccp_ext.Native_fallback);
  Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
    (Ccp_ipc.Message.Set_cwnd { flow = 1; bytes = 60_000 });
  Sim.run ~until:(Time_ns.ms 360) sim;
  Alcotest.(check bool) "fallback lifted" false (Ccp_ext.in_fallback ext ~flow:1);
  Alcotest.(check int) "agent window applied over native's" 60_000 !cwnd;
  let before = !(!acks) in
  iface.Congestion_iface.on_ack ctl (ack_event sim);
  Alcotest.(check int) "native cc no longer consulted" before !(!acks);
  Alcotest.(check int) "agent window untouched by the ACK" 60_000 !cwnd

(* --- jitter / reordering --- *)

let test_jitter_reorders_but_transfer_survives () =
  let base = Experiment.default_config ~rate_bps:20e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 8) in
  let config =
    {
      base with
      Experiment.warmup = Time_ns.sec 2;
      jitter = Time_ns.ms 2 (* far above per-packet serialization: heavy reordering *);
      flows = [ Experiment.flow (Experiment.Native_cc Ccp_algorithms.Native_reno.create) ];
    }
  in
  let r = Experiment.run config in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f under reordering" r.Experiment.utilization)
    true
    (r.Experiment.utilization > 0.70);
  Alcotest.(check int) "no timeouts" 0
    (List.fold_left (fun acc (f : Experiment.flow_result) -> acc + f.timeouts) 0
       r.Experiment.flows)

let test_link_jitter_bounds () =
  let sim = Sim.create () in
  let link =
    Link.create ~sim ~rate_bps:1e9 ~delay:(Time_ns.ms 1) ~jitter:(Time_ns.us 500)
      ~qdisc:(Queue_disc.Droptail { capacity_bytes = 1_000_000; ecn_threshold_bytes = None })
      ()
  in
  let arrivals = ref [] in
  let arrival_seqs = ref [] in
  Link.connect link (fun pkt ->
      arrivals := Sim.now sim :: !arrivals;
      match pkt.Packet.payload with
      | Packet.Data d -> arrival_seqs := d.Packet.seq :: !arrival_seqs
      | Packet.Ack _ -> ());
  for i = 0 to 99 do
    Link.send link (Packet.data ~flow:1 ~seq:(i * 1448) ~len:1448 ~sent_at:Time_ns.zero ())
  done;
  Sim.run sim;
  Alcotest.(check int) "all arrived" 100 (List.length !arrivals);
  (* The i-th packet finishes serializing by 100 x ~11.9us; every arrival
     then lands within [delay, last serialization + delay + jitter]. *)
  let upper =
    Time_ns.add (Time_ns.add (Time_ns.ms 1) (Time_ns.us 500)) (Time_ns.us (100 * 12))
  in
  List.iter
    (fun at ->
      Alcotest.(check bool) "within jitter bounds" true
        (Time_ns.compare at (Time_ns.ms 1) >= 0 && Time_ns.compare at upper <= 0))
    !arrivals;
  (* With 500us of jitter against ~12us serialization, reordering is near
     certain over 100 packets: sequence numbers must not arrive sorted. *)
  let in_arrival_order = List.rev !arrival_seqs in
  Alcotest.(check bool) "jitter reorders arrivals" true
    (in_arrival_order <> List.sort compare in_arrival_order)

(* --- time-varying link --- *)

let test_rate_schedule_switches () =
  let sim = Sim.create () in
  let link =
    Link.create ~sim ~rate_bps:1e6
      ~rate_schedule:[ (Time_ns.ms 100, 2e6) ]
      ~delay:Time_ns.zero
      ~qdisc:(Queue_disc.Droptail { capacity_bytes = 10_000_000; ecn_threshold_bytes = None })
      ()
  in
  Link.connect link (fun _ -> ());
  Alcotest.(check (float 1e-9)) "initial rate" 1e6 (Link.current_rate_bps link);
  ignore
    (Sim.schedule sim ~at:(Time_ns.ms 150) (fun () ->
         Alcotest.(check (float 1e-9)) "stepped rate" 2e6 (Link.current_rate_bps link)));
  Sim.run sim;
  (* Serialization time halves after the step: send one packet before and
     one after and compare link busy durations via delivered counters. *)
  Alcotest.(check (float 1e-9)) "after run" 2e6 (Link.current_rate_bps link)

let test_cellular_throughput_tracks_capacity () =
  (* Capacity alternates 16 <-> 4 Mbit/s every 2 s; mean capacity is
     10 Mbit/s. A loss-based flow should land in that neighbourhood. *)
  let schedule =
    List.concat_map
      (fun i ->
        [ (Time_ns.sec (4 * i), 16e6); (Time_ns.sec ((4 * i) + 2), 4e6) ])
      [ 0; 1; 2 ]
  in
  let base = Experiment.default_config ~rate_bps:16e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 12) in
  let config =
    {
      base with
      Experiment.warmup = Time_ns.sec 2;
      rate_schedule = schedule;
      flows = [ Experiment.flow (Experiment.Native_cc Ccp_algorithms.Native_cubic.create) ];
    }
  in
  let r = Experiment.run config in
  let goodput = (List.hd r.Experiment.flows).Experiment.goodput_bps in
  Alcotest.(check bool)
    (Printf.sprintf "goodput %.1f Mbit/s tracks varying capacity" (goodput /. 1e6))
    true
    (goodput > 5e6 && goodput < 11e6)

(* --- congestion-manager aggregation --- *)

let test_aggregate_shares_equally () =
  let aggregate = Ccp_algorithms.Ccp_aggregate.create () in
  let algo = Ccp_algorithms.Ccp_aggregate.algorithm aggregate in
  let base = Experiment.default_config ~rate_bps:20e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 12) in
  let config =
    {
      base with
      Experiment.warmup = Time_ns.sec 4;
      flows = List.init 3 (fun _ -> Experiment.flow (Experiment.Ccp_cc algo));
    }
  in
  let r = Experiment.run config in
  Alcotest.(check int) "three members" 3 (Ccp_algorithms.Ccp_aggregate.member_count aggregate);
  Alcotest.(check bool)
    (Printf.sprintf "near-perfect fairness (jain %.3f)" r.Experiment.jain_index)
    true
    (r.Experiment.jain_index > 0.99);
  Alcotest.(check bool)
    (Printf.sprintf "aggregate fills the link (%.2f)" r.Experiment.utilization)
    true
    (r.Experiment.utilization > 0.85)

let test_aggregate_instant_share_on_join () =
  let aggregate = Ccp_algorithms.Ccp_aggregate.create () in
  let algo = Ccp_algorithms.Ccp_aggregate.algorithm aggregate in
  let base = Experiment.default_config ~rate_bps:20e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 12) in
  let config =
    {
      base with
      Experiment.flows =
        [
          Experiment.flow (Experiment.Ccp_cc algo);
          Experiment.flow ~start_at:(Time_ns.sec 6) (Experiment.Ccp_cc algo);
        ];
    }
  in
  let r = Experiment.run config in
  (* The CM benefit: within one second of joining, the new flow is already
     at roughly half the aggregate (no slow-start probing from scratch). *)
  let series = Trace.series r.Experiment.trace "throughput_mbps.1" in
  let shortly_after =
    List.filter
      (fun (at, _) ->
        Time_ns.compare at (Time_ns.sec 7) >= 0 && Time_ns.compare at (Time_ns.sec 8) <= 0)
      series
  in
  let mean =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 shortly_after
    /. float_of_int (max 1 (List.length shortly_after))
  in
  Alcotest.(check bool)
    (Printf.sprintf "instant share: %.1f Mbit/s within 2s of joining" mean)
    true (mean > 5.0)

let suite =
  [
    ( "ext.watchdog",
      [
        Alcotest.test_case "triggers on silence" `Quick test_watchdog_triggers_on_silence;
        Alcotest.test_case "lifted by agent message" `Quick test_watchdog_lifted_by_agent_message;
        Alcotest.test_case "quiet while agent talks" `Quick test_watchdog_quiet_while_agent_talks;
        Alcotest.test_case "keeps traffic flowing end-to-end" `Slow
          test_watchdog_in_full_experiment;
      ] );
    ( "ext.native_fallback",
      [
        Alcotest.test_case "takes over on silence" `Quick test_native_fallback_takes_over;
        Alcotest.test_case "hands back on recovery" `Quick
          test_native_fallback_hands_back_on_recovery;
      ] );
    ( "ext.jitter",
      [
        Alcotest.test_case "transfer survives reordering" `Slow
          test_jitter_reorders_but_transfer_survives;
        Alcotest.test_case "jitter bounds" `Quick test_link_jitter_bounds;
      ] );
    ( "ext.varying_link",
      [
        Alcotest.test_case "rate schedule" `Quick test_rate_schedule_switches;
        Alcotest.test_case "cellular throughput" `Slow test_cellular_throughput_tracks_capacity;
      ] );
    ( "ext.aggregate",
      [
        Alcotest.test_case "equal shares" `Slow test_aggregate_shares_equally;
        Alcotest.test_case "instant share on join" `Slow test_aggregate_instant_share_on_join;
      ] );
  ]
