(* Lightweight seeded property-based test runner.

   A thin layer over {!Ccp_util.Rng}: each property runs [cases] random
   inputs drawn from a generator, all derived from one fixed seed so runs
   are deterministic and failures reproducible. Override the seed with
   [CCP_PROP_SEED=<n> dune exec test/main.exe] for soak runs (bin/ci.sh
   does this). Unlike qcheck there is no shrinking — inputs are kept small
   by construction instead — but failure reports carry the case index,
   seed, and the generated input. *)

open Ccp_util

let default_cases = 100

let seed =
  match Sys.getenv_opt "CCP_PROP_SEED" with
  | None | Some "" -> 0x5EED
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> Printf.ksprintf failwith "CCP_PROP_SEED=%S is not an integer" s)

exception Falsified of string

let fail fmt = Printf.ksprintf (fun m -> raise (Falsified m)) fmt
let require what cond = if not cond then fail "%s" what

let check_eq ~what show expected actual =
  if expected <> actual then
    fail "%s: expected %s, got %s" what (show expected) (show actual)

(* Each case gets its own generator split off a per-property root (the
   fixed seed xor a hash of the property name, so properties sharing the
   seed still see decorrelated inputs), so adding draws to one case cannot
   shift the inputs of later cases. *)
let run ?(cases = default_cases) ~name ~gen ~show prop () =
  let root = Rng.create ~seed:(seed lxor Hashtbl.hash name) in
  for i = 1 to cases do
    let case_rng = Rng.split root in
    let x = gen case_rng in
    try prop x with
    | Falsified msg ->
        Alcotest.failf "property %s: case %d/%d (CCP_PROP_SEED=%d)@\ninput: %s@\n%s" name i
          cases seed (show x) msg
    | e ->
        Alcotest.failf "property %s: case %d/%d (CCP_PROP_SEED=%d)@\ninput: %s@\nraised %s"
          name i cases seed (show x) (Printexc.to_string e)
  done

let test_case ?cases ~name ~gen ~show prop =
  Alcotest.test_case name `Quick (run ?cases ~name ~gen ~show prop)

(* --- generator helpers --- *)

let int_range rng lo hi = lo + Rng.int rng (hi - lo + 1)
let list rng ?(min = 0) ~max gen = List.init (int_range rng min max) (fun _ -> gen rng)
let choose rng xs = List.nth xs (Rng.int rng (List.length xs))

let string rng ?(max = 12) () =
  String.init (Rng.int rng (max + 1)) (fun _ -> Char.chr (int_range rng 32 126))
