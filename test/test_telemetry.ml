(* Fleet telemetry (observability PR): prefix-filtered snapshots, the
   space-saving Top-K error bound and window-delta conservation as
   qcheck properties, the SLO engine's fire/clear FSM on a synthetic
   workload, the byte-exact seed-42 chaos golden timeline, and the
   Top-K sketches identifying the aggregate-dominant flows at N=2048
   without O(N) metric names. *)

open Ccp_obs
module Chaos = Ccp_core.Scenarios.Chaos
module Time_ns = Ccp_util.Time_ns

(* --- Metrics.snapshot ~prefix ------------------------------------------- *)

let test_snapshot_prefix () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~unit_:"msgs" "trace.spans_started" in
  let b = Metrics.counter m ~unit_:"msgs" "agent.reports_shed" in
  let h = Metrics.histogram m ~unit_:"us" "trace.reaction_us" in
  Metrics.add a 3;
  Metrics.incr b;
  Metrics.observe h 120.0;
  let names ?prefix () =
    List.map (fun (r : Metrics.row) -> r.Metrics.name) (Metrics.snapshot ?prefix m)
  in
  let all = names () in
  let traced = names ~prefix:"trace." () in
  Alcotest.(check bool)
    "unfiltered snapshot covers both prefixes" true
    (List.mem "agent.reports_shed" all && List.mem "trace.spans_started" all);
  (* The filter matches on the registered name, so a histogram's derived
     rows travel with their base name — whole histograms, never slices. *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " kept by trace. filter") true (List.mem n traced))
    [ "trace.spans_started"; "trace.reaction_us_count"; "trace.reaction_us_p99" ];
  Alcotest.(check bool)
    "agent row filtered out" false
    (List.mem "agent.reports_shed" traced);
  Alcotest.(check int) "no matches, empty snapshot" 0
    (List.length (names ~prefix:"nonexistent." ()));
  (* Filtering must be a pure view: same rows as filtering afterwards. *)
  let by_hand =
    List.filter
      (fun (r : Metrics.row) ->
        String.length r.Metrics.name >= 6 && String.sub r.Metrics.name 0 6 = "trace.")
      (Metrics.snapshot m)
  in
  Alcotest.(check int)
    "prefix view = post-hoc filter"
    (List.length by_hand) (List.length traced)

(* --- Top-K: space-saving error bound (qcheck) --------------------------- *)

(* Random weighted streams with a skewed key range: every sketch answer
   must bracket the true count (count - err <= true <= count) and the
   per-entry error can never exceed total / k; any key whose true count
   strictly exceeds total / k must be tracked (the heavy-hitter
   guarantee). *)
let prop_topk_error_bound =
  QCheck.Test.make ~name:"topk space-saving error bound" ~count:200
    QCheck.(list (pair (int_bound 40) (int_bound 50)))
    (fun stream ->
      let tk = Topk.create ~k:8 () in
      let s = Topk.sketch tk "flow.test" in
      let truth = Hashtbl.create 64 in
      List.iter
        (fun (key, w) ->
          Topk.add s key w;
          Hashtbl.replace truth key (w + Option.value ~default:0 (Hashtbl.find_opt truth key)))
        stream;
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 stream in
      if Topk.total s <> total then QCheck.Test.fail_reportf "total %d <> %d" (Topk.total s) total;
      let bound = Topk.error_bound s in
      if Topk.tracked s >= 8 && bound > total / 8 then
        QCheck.Test.fail_reportf "bound %d exceeds total/k %d" bound (total / 8);
      List.iter
        (fun (e : Topk.entry) ->
          let true_count = Option.value ~default:0 (Hashtbl.find_opt truth e.Topk.key) in
          if e.Topk.err > bound then
            QCheck.Test.fail_reportf "key %d err %d > bound %d" e.Topk.key e.Topk.err bound;
          if e.Topk.count - e.Topk.err > true_count || true_count > e.Topk.count then
            QCheck.Test.fail_reportf "key %d: true %d outside [%d, %d]" e.Topk.key
              true_count (e.Topk.count - e.Topk.err) e.Topk.count)
        (Topk.entries s);
      (* Heavy-hitter guarantee: true count > total/k implies presence. *)
      Hashtbl.iter
        (fun key true_count ->
          if true_count > total / 8 && Topk.find s key = None then
            QCheck.Test.fail_reportf "heavy key %d (count %d > %d) evicted" key true_count
              (total / 8))
        truth;
      true)

(* --- Timeseries: window-delta conservation (qcheck) --------------------- *)

(* Drive a 4-window ring well past wrap-around with random counter
   increments between ticks: the deltas seen by the on-close hook (which
   observes every close, evicted or not) must sum to the final counter
   value, each exactly once — and the hook must see strictly increasing
   window indexes. *)
let prop_window_delta_conservation =
  QCheck.Test.make ~name:"window deltas sum to the counter, across ring wrap" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 5))
    (fun increments ->
      let m = Metrics.create () in
      let c = Metrics.counter m ~unit_:"msgs" "t.events" in
      let ts = Timeseries.create ~metrics:m ~window:1_000 ~windows:4 ~subticks:1 () in
      let hook_sum = ref 0 and last_index = ref (-1) and ok = ref true in
      Timeseries.set_on_close ts (fun _ (w : Timeseries.window) ->
          if w.Timeseries.index <= !last_index then ok := false;
          last_index := w.Timeseries.index;
          match Timeseries.point w "t.events" with
          | Some (Timeseries.Counter_point { delta; _ }) -> hook_sum := !hook_sum + delta
          | Some _ -> ok := false
          | None -> () (* delta-suppressed: a zero-delta window carries no point *));
      Timeseries.tick ts ~now:0 |> ignore;
      List.iteri
        (fun i n ->
          Metrics.add c n;
          ignore (Timeseries.tick ts ~now:((i + 1) * 1_000) : bool))
        increments;
      (* A straggler after the last tick must be recovered by flush. *)
      Metrics.incr c;
      Timeseries.flush ts ~now:((List.length increments * 1_000) + 500);
      if not !ok then QCheck.Test.fail_reportf "hook saw malformed windows";
      if !hook_sum <> Metrics.counter_value c then
        QCheck.Test.fail_reportf "hook deltas %d <> counter %d (closed %d dropped %d)"
          !hook_sum (Metrics.counter_value c) (Timeseries.closed_windows ts)
          (Timeseries.dropped_windows ts);
      true)

(* --- Health: the fire/clear FSM on a synthetic workload ----------------- *)

let test_health_fire_clear () =
  let m = Metrics.create () in
  let bad = Metrics.counter m ~unit_:"msgs" "t.bad" in
  let good = Metrics.counter m ~unit_:"msgs" "t.good" in
  let config =
    {
      Health.slos =
        [
          {
            Health.slo_name = "bad_rate";
            sli = Health.Event_ratio { bad = [ "t.bad" ]; total = [ "t.bad"; "t.good" ] };
            objective = 0.05;
          };
        ];
      burn_threshold = 10.0;
      long_windows = 2;
      clear_windows = 1;
    }
  in
  let h = Health.create ~config () in
  let ts = Timeseries.create ~metrics:m ~window:1_000 ~subticks:1 () in
  Timeseries.set_on_close ts (fun _ w -> Health.on_window h w);
  Timeseries.tick ts ~now:0 |> ignore;
  (* w0: healthy; w1: all bad (short burn 20, 2-window long burn 10 —
     both at the gate, fires); w2: healthy again (clears). *)
  Metrics.add good 100;
  Timeseries.tick ts ~now:1_000 |> ignore;
  Alcotest.(check (option bool))
    "ok after healthy window" (Some false)
    (Option.map (fun s -> s = Health.Firing) (Health.alert_state h ~slo:"bad_rate"));
  Metrics.add bad 100;
  Timeseries.tick ts ~now:2_000 |> ignore;
  Alcotest.(check (option bool))
    "firing after bad window" (Some true)
    (Option.map (fun s -> s = Health.Firing) (Health.alert_state h ~slo:"bad_rate"));
  Metrics.add good 100;
  Timeseries.tick ts ~now:3_000 |> ignore;
  Alcotest.(check (option bool))
    "cleared after recovery window" (Some false)
    (Option.map (fun s -> s = Health.Firing) (Health.alert_state h ~slo:"bad_rate"));
  (match Health.transitions h with
  | [ fire; clear ] ->
    Alcotest.(check string) "fired slo" "bad_rate" fire.Health.tr_slo;
    Alcotest.(check bool) "fire state" true (fire.Health.tr_to = Health.Firing);
    Alcotest.(check int) "fired at window 1" 1 fire.Health.tr_window;
    Alcotest.(check bool) "clear state" true (clear.Health.tr_to = Health.Ok_state);
    Alcotest.(check int) "cleared at window 2" 2 clear.Health.tr_window;
    Alcotest.(check bool)
      "fire burn rates at the gate" true
      (fire.Health.tr_burn_short >= 10.0 && fire.Health.tr_burn_long >= 10.0)
  | l -> Alcotest.failf "expected fire+clear, got %d transitions" (List.length l));
  let v =
    List.find (fun v -> v.Health.v_slo = "bad_rate") (Health.verdicts h)
  in
  Alcotest.(check int) "one alert episode" 1 v.Health.v_fired;
  Alcotest.(check bool) "whole-run verdict fails" false v.Health.v_pass;
  Alcotest.(check int) "three windows evaluated" 3 (Health.windows_evaluated h)

(* --- the seed-42 chaos golden timeline ---------------------------------- *)

(* Half-length run (6 s) so the suite stays fast; the crash at 45 %
   still lands mid-run and must raise the orphan_rate burn-rate alert
   in its window and clear it in a later one. Byte-exact: telemetry is
   sim-clock-driven, iterates metrics sorted by name, and the scenario
   arms it with a zero wall clock, so the document is a pure function
   of the scenario arguments. *)
let chaos_timeline =
  lazy
    (let sc =
       Chaos.run ~duration:(Time_ns.sec 6) ~seeds:[ 42 ] ~with_telemetry:true ()
     in
     match sc.Chaos.cells with
     | ({ Chaos.telemetry = Some obs; _ } as cell) :: _ -> (cell, obs)
     | _ -> Alcotest.fail "chaos run produced no telemetry-armed cell")

let timeline_golden_path () =
  if Sys.file_exists "golden_timeline.expected" then "golden_timeline.expected"
  else "test/golden_timeline.expected"

let test_golden_timeline () =
  let _, obs = Lazy.force chaos_timeline in
  let doc =
    match Timeline.of_obs obs with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "Timeline.of_obs: %s" e
  in
  let actual = Json.to_string doc in
  (* Regenerate with CCP_REGEN_TIMELINE=path/to/golden_timeline.expected
     after an intentional schema or dynamics change. *)
  match Sys.getenv_opt "CCP_REGEN_TIMELINE" with
  | Some path ->
    let oc = open_out path in
    output_string oc (actual ^ "\n");
    close_out oc;
    Printf.printf "regenerated %s\n" path
  | None ->
    let ic = open_in (timeline_golden_path ()) in
    let expected = input_line ic in
    close_in ic;
    if not (String.equal expected actual) then begin
      let n = min (String.length expected) (String.length actual) in
      let rec first_diff i =
        if i >= n then n else if expected.[i] <> actual.[i] then i else first_diff (i + 1)
      in
      let i = first_diff 0 in
      let ctx s = String.sub s (max 0 (i - 40)) (min 80 (String.length s - max 0 (i - 40))) in
      Alcotest.failf
        "golden timeline diverges at byte %d:\n  expected ...%s...\n  actual   ...%s..."
        i (ctx expected) (ctx actual)
    end

let test_timeline_validates () =
  let _, obs = Lazy.force chaos_timeline in
  match Timeline.of_obs obs with
  | Error e -> Alcotest.failf "Timeline.of_obs: %s" e
  | Ok doc -> (
    match Timeline.validate doc with
    | Error e -> Alcotest.failf "timeline fails its own schema: %s" e
    | Ok held -> Alcotest.(check bool) "windows held" true (held > 0))

let test_chaos_alert_fires_and_clears () =
  let _, obs = Lazy.force chaos_timeline in
  let h = match obs.Obs.health with Some h -> h | None -> Alcotest.fail "no health" in
  let trs =
    List.filter (fun tr -> tr.Health.tr_slo = "orphan_rate") (Health.transitions h)
  in
  match trs with
  | fire :: clear :: _ ->
    Alcotest.(check bool) "crash window fires" true (fire.Health.tr_to = Health.Firing);
    Alcotest.(check bool) "a later window clears" true (clear.Health.tr_to = Health.Ok_state);
    Alcotest.(check bool)
      "clear strictly after fire" true
      (clear.Health.tr_window > fire.Health.tr_window);
    (* The firing window is inside the agent outage (sim ns). *)
    let sc_from = Time_ns.to_float_sec (Chaos.crash_from ~duration:(Time_ns.sec 6)) in
    let fired_at = float_of_int fire.Health.tr_at /. 1e9 in
    Alcotest.(check bool)
      (Printf.sprintf "alert at %.2f s brackets the %.2f s crash" fired_at sc_from)
      true
      (fired_at >= sc_from && fired_at <= sc_from +. 1.0)
  | _ -> Alcotest.failf "expected orphan_rate fire+clear, got %d" (List.length trs)

(* --- Top-K at N=2048: dominant flows identified, O(k) state ------------- *)

(* A 2048-flow fan-in where 8 flows report every 0.25 RTT and the rest
   every 16 RTTs: the fast flows carry ~64x a slow flow's report
   traffic, putting their true counts above total/k — exactly the
   regime the space-saving sketch proves it never misses. The sketch
   must (a) stay O(k) at N=2048, (b) conserve the stream total against
   the datapath's own counters, and (c) surface all eight dominant
   flows as its top entries, with every slow flow's possible count
   bounded below the fast flows' guaranteed counts. *)
let test_topk_n2048 () =
  let module E = Ccp_core.Experiment in
  let module Reno = Ccp_algorithms.Ccp_reno in
  let n = 2048 in
  let fast = List.init 8 (fun i -> i * 256) in
  let obs =
    Obs.create ~tracer:true ~telemetry:true ~topk_k:64 ~clock:(fun () -> 0.0) ()
  in
  let base =
    E.default_config ~rate_bps:96e6 ~base_rtt:(Time_ns.ms 10)
      ~duration:(Time_ns.of_float_sec 0.5)
  in
  let flows =
    List.init n (fun i ->
        let interval_rtts = if List.mem i fast then 0.25 else 16.0 in
        E.flow (E.Ccp_cc (Reno.create_with ~interval_rtts ())))
  in
  let _ =
    E.run
      {
        base with
        E.seed = 42;
        obs = Some obs;
        flows;
        agent_flow_pool = Some n;
        datapath =
          { Ccp_datapath.Ccp_ext.default_config with
            Ccp_datapath.Ccp_ext.flow_capacity = n };
      }
  in
  let tk = match obs.Obs.topk with Some tk -> tk | None -> Alcotest.fail "no topk" in
  let s =
    match List.find_opt (fun s -> Topk.name s = "flow.reports") (Topk.sketches tk) with
    | Some s -> s
    | None -> Alcotest.fail "no flow.reports sketch"
  in
  Alcotest.(check bool) "reports flowed" true (Topk.total s > 0);
  (* O(k) state at N=2048: the sketch never grows past its k. *)
  Alcotest.(check bool)
    (Printf.sprintf "tracked %d <= k %d despite %d flows" (Topk.tracked s) (Topk.k s) n)
    true
    (Topk.tracked s <= Topk.k s);
  Alcotest.(check bool) "k is sub-linear in N" true (Topk.k s < n);
  (* Nothing slipped past the sketch: its total equals the datapath's
     cumulative report + urgent counters. *)
  let counter name =
    match
      List.find_opt (fun (r : Metrics.row) -> r.Metrics.name = name)
        (Metrics.snapshot obs.Obs.metrics)
    with
    | Some r -> int_of_float r.Metrics.value
    | None -> Alcotest.failf "no %s counter" name
  in
  Alcotest.(check int) "sketch total = reports + urgents"
    (counter "datapath.reports_sent" + counter "datapath.urgents_sent")
    (Topk.total s);
  let bound = Topk.error_bound s in
  Alcotest.(check bool)
    (Printf.sprintf "space-saving bound %d <= total/k %d" bound (Topk.total s / Topk.k s))
    true
    (bound <= Topk.total s / Topk.k s);
  (* Identification within the proven bound: each fast flow's guaranteed
     count (count - err) exceeds the error bound, i.e. is provably
     larger than any flow the sketch may have evicted. *)
  List.iter
    (fun id ->
      match Topk.find s id with
      | None -> Alcotest.failf "dominant flow %d missing from the sketch" id
      | Some (e : Topk.entry) ->
        Alcotest.(check bool)
          (Printf.sprintf "flow %d: count %d - err %d > bound %d" id e.Topk.count
             e.Topk.err bound)
          true
          (e.Topk.count - e.Topk.err > bound))
    fast;
  (* And they are the top of the ranking: the eight heaviest entries are
     exactly the eight fast flows. *)
  let top8 =
    List.filteri (fun i _ -> i < 8) (Topk.entries s)
    |> List.map (fun (e : Topk.entry) -> e.Topk.key)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "top-8 keys are the fast flows" (List.sort compare fast) top8

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "snapshot prefix filter" `Quick test_snapshot_prefix;
        QCheck_alcotest.to_alcotest prop_topk_error_bound;
        QCheck_alcotest.to_alcotest prop_window_delta_conservation;
        Alcotest.test_case "health fire/clear FSM" `Quick test_health_fire_clear;
        Alcotest.test_case "golden chaos timeline" `Quick test_golden_timeline;
        Alcotest.test_case "timeline self-validates" `Quick test_timeline_validates;
        Alcotest.test_case "chaos crash alert fires and clears" `Quick
          test_chaos_alert_fires_and_clears;
        Alcotest.test_case "topk at n=2048" `Quick test_topk_n2048;
      ] );
  ]
