(* Datapath self-protection tests: static admission control
   ({!Ccp_lang.Limits}), the typecheck and evaluator hardening that rides
   along with it, the runtime guard envelope (clamps + incident
   accounting), and the quarantine-to-native-CC lifecycle — both against
   a fake controller harness and end-to-end through {!Experiment} with
   the one-active-controller invariant sampled mid-run. *)

open Ccp_util
open Ccp_eventsim
open Ccp_net
open Ccp_datapath
open Ccp_core
open Ccp_lang

let reason = Alcotest.testable Limits.pp_reason Limits.equal_reason

let check_reason what expected p =
  match Limits.check p with
  | Ok () -> Alcotest.failf "%s: admitted, expected %s" what (Limits.reason_to_string expected)
  | Error (r, _) -> Alcotest.check reason what expected r

(* --- static admission limits --- *)

let rec deep n = if n = 0 then Ast.Const 1.0 else Ast.Neg (deep (n - 1))

let test_limits_rejections () =
  check_reason "too long" Limits.Program_too_long
    (Ast.program (List.init 300 (fun _ -> Ast.Cwnd (Ast.Const 1.0))));
  check_reason "too deep" Limits.Expr_too_deep
    (Ast.program [ Ast.Cwnd (deep 40); Ast.Wait_rtts (Ast.Const 1.0) ]);
  let wide_fold =
    let fields = List.init 70 (fun i -> (Printf.sprintf "f%d" i, Ast.Const 0.0)) in
    Ast.Measure (Ast.Fold { Ast.init = fields; update = fields })
  in
  check_reason "fold too large" Limits.Fold_too_large
    (Ast.program [ wide_fold; Ast.Wait_rtts (Ast.Const 1.0); Ast.Report ]);
  check_reason "vector too wide" Limits.Vector_too_wide
    (Ast.program
       [
         Ast.Measure (Ast.Vector (List.init 40 (fun _ -> "rtt_us")));
         Ast.Wait_rtts (Ast.Const 1.0);
         Ast.Report;
       ]);
  check_reason "constant wait below floor" Limits.Wait_too_short
    (Ast.program [ Ast.Cwnd (Ast.Const 14480.0); Ast.Wait (Ast.Const 10.0); Ast.Report ]);
  check_reason "constant wait_rtts below floor" Limits.Wait_too_short
    (Ast.program
       [ Ast.Cwnd (Ast.Const 14480.0); Ast.Wait_rtts (Ast.Const 0.05); Ast.Report ])

let test_admit_full_decision () =
  (* [admit] = typecheck + limits: an ill-typed program maps to
     [Invalid_program], and a sane one passes both layers. *)
  (match Limits.admit (Ast.program [ Ast.Cwnd (Ast.Var "no_such_var"); Ast.Wait_rtts (Ast.Const 1.0) ]) with
  | Ok () -> Alcotest.fail "ill-typed program admitted"
  | Error (r, _) -> Alcotest.check reason "ill-typed" Limits.Invalid_program r);
  match Limits.admit (Ccp_algorithms.Prog.window_program ~cwnd:14_480 ()) with
  | Ok () -> ()
  | Error (r, detail) ->
      Alcotest.failf "window program refused: %s (%s)" (Limits.reason_to_string r) detail

(* --- typecheck hardening satellites --- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_typecheck_error what ~sub p =
  match Typecheck.check p with
  | Ok _ -> Alcotest.failf "%s: typechecked, expected an error" what
  | Error errs ->
      if not (List.exists (fun (e : Typecheck.error) -> contains ~sub e.message) errs) then
        Alcotest.failf "%s: no error mentions %S (got: %s)" what sub
          (String.concat " | " (List.map (fun (e : Typecheck.error) -> e.message) errs))

let test_typecheck_rejects_degenerate_prims () =
  check_typecheck_error "Wait(0)" ~sub:"not positive"
    (Ast.program [ Ast.Cwnd (Ast.Const 14480.0); Ast.Wait (Ast.Const 0.0); Ast.Report ]);
  check_typecheck_error "WaitRtts(-1)" ~sub:"not positive"
    (Ast.program [ Ast.Cwnd (Ast.Const 14480.0); Ast.Wait_rtts (Ast.Const (-1.0)); Ast.Report ]);
  check_typecheck_error "empty vector" ~sub:"no fields"
    (Ast.program
       [ Ast.Measure (Ast.Vector []); Ast.Cwnd (Ast.Const 14480.0);
         Ast.Wait_rtts (Ast.Const 1.0); Ast.Report ])

(* --- evaluator totality satellites --- *)

let const_env = { Eval.lookup_var = (fun _ -> None); Eval.lookup_pkt = (fun _ -> None) }

let test_eval_clamps_non_finite () =
  let incidents = Eval.fresh_counter () in
  (* pow overflows to infinity; the clamp must hide it and count it. *)
  let v = Eval.eval ~incidents const_env (Ast.Call ("pow", [ Ast.Const 1e300; Ast.Const 10.0 ])) in
  Alcotest.(check (float 0.0)) "pow overflow clamped" 0.0 v;
  Alcotest.(check bool) "pow overflow counted" true (incidents.Eval.non_finite >= 1);
  (* Division by a denormal overflows without tripping the div-by-zero
     branch — the finiteness clamp is the last line of defence. *)
  let incidents = Eval.fresh_counter () in
  let v = Eval.eval ~incidents const_env (Ast.Bin (Ast.Div, Ast.Const 1.0, Ast.Const 4.9e-324)) in
  Alcotest.(check (float 0.0)) "denormal division clamped" 0.0 v;
  Alcotest.(check int) "denormal division counted" 1 incidents.Eval.non_finite;
  (* Plain div-by-zero still lands in its own counter, not the clamp's. *)
  let incidents = Eval.fresh_counter () in
  let v = Eval.eval ~incidents const_env (Ast.Bin (Ast.Div, Ast.Const 1.0, Ast.Const 0.0)) in
  Alcotest.(check (float 0.0)) "div by zero yields 0" 0.0 v;
  Alcotest.(check int) "div by zero counted" 1 incidents.Eval.div_by_zero;
  Alcotest.(check int) "div by zero is not non-finite" 0 incidents.Eval.non_finite

(* --- datapath harness (no TCP, fake controller) --- *)

let fake_ctl sim ~flow =
  let cwnd = ref 14_480 and rate = ref 0.0 in
  let ctl : Congestion_iface.ctl =
    {
      flow;
      mss = 1448;
      now = (fun () -> Sim.now sim);
      get_cwnd = (fun () -> !cwnd);
      set_cwnd = (fun b -> cwnd := b);
      get_rate = (fun () -> !rate);
      set_rate = (fun r -> rate := r);
      srtt = (fun () -> Some (Time_ns.ms 10));
      latest_rtt = (fun () -> Some (Time_ns.ms 11));
      min_rtt = (fun () -> Some (Time_ns.ms 10));
      inflight = (fun () -> 0);
      send_rate_ewma = (fun () -> None);
      delivery_rate_ewma = (fun () -> None);
    }
  in
  (ctl, cwnd, rate)

let guard_env ?(config = Ccp_ext.default_config) () =
  let sim = Sim.create () in
  let channel =
    Ccp_ipc.Channel.create ~sim ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 20)) ()
  in
  let to_agent = ref [] in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun m ->
      to_agent := m :: !to_agent);
  let ext = Ccp_ext.create ~sim ~channel ~config () in
  let install program ~flow =
    Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
      (Ccp_ipc.Message.Install { flow; program })
  in
  (sim, channel, ext, to_agent, install)

let verdicts msgs =
  List.filter_map
    (function Ccp_ipc.Message.Install_result { verdict; _ } -> Some verdict | _ -> None)
    (List.rev msgs)

let sane_program = Ast.program
    [ Ast.Cwnd (Ast.Bin (Ast.Mul, Ast.Const 10.0, Ast.Var "mss"));
      Ast.Wait_rtts (Ast.Const 1.0); Ast.Report ]

let test_admission_answers_install () =
  let sim, _, ext, to_agent, install = guard_env () in
  let ctl, _, _ = fake_ctl sim ~flow:1 in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init ctl;
  install Scenarios.Hostile.wait_too_short ~flow:1;
  Sim.run ~until:(Time_ns.ms 1) sim;
  Alcotest.(check int) "rejected count" 1 (Ccp_ext.installs_rejected ext);
  Alcotest.(check bool) "nothing installed" true
    (Ccp_ext.installed_program ext ~flow:1 = None);
  (match verdicts !to_agent with
  | [ Ccp_ipc.Message.Rejected { reason = r; _ } ] ->
      Alcotest.check reason "rejection reason" Limits.Wait_too_short r
  | vs -> Alcotest.failf "expected one rejection, got %d verdicts" (List.length vs));
  install sane_program ~flow:1;
  Sim.run ~until:(Time_ns.ms 2) sim;
  Alcotest.(check int) "accepted count" 1 (Ccp_ext.installs_accepted ext);
  Alcotest.(check bool) "program installed" true
    (Ccp_ext.installed_program ext ~flow:1 <> None);
  match verdicts !to_agent with
  | [ _; Ccp_ipc.Message.Accepted ] -> ()
  | _ -> Alcotest.fail "expected a second, accepting verdict"

let test_guard_clamps_cwnd_and_rate () =
  let sim, _, ext, _, install = guard_env () in
  let ctl, cwnd, rate = fake_ctl sim ~flow:1 in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init ctl;
  install Scenarios.Hostile.zero_cwnd ~flow:1;
  Sim.run ~until:(Time_ns.ms 50) sim;
  Alcotest.(check int) "cwnd pinned at the 1-segment floor" 1448 !cwnd;
  let g = Option.get (Ccp_ext.guard_incidents ext ~flow:1) in
  Alcotest.(check bool) "cwnd clamps counted" true (g.Ccp_ext.cwnd_clamped > 0);
  Alcotest.(check bool) "still under agent control" true
    (Ccp_ext.controller ext ~flow:1 = Some Ccp_ext.Agent_program);
  (* Same flow, new program: absurd rate and window both hit ceilings. *)
  install Scenarios.Hostile.huge_rate ~flow:1;
  Sim.run ~until:(Time_ns.ms 100) sim;
  let guard = Ccp_ext.default_guard in
  Alcotest.(check bool) "rate within ceiling" true
    (!rate <= guard.Ccp_ext.max_rate_bytes_per_sec);
  Alcotest.(check bool) "cwnd within ceiling" true (!cwnd <= guard.Ccp_ext.max_cwnd_bytes);
  let g = Option.get (Ccp_ext.guard_incidents ext ~flow:1) in
  Alcotest.(check bool) "rate clamps counted" true (g.Ccp_ext.rate_clamped > 0);
  Alcotest.(check bool) "fresh window after accepted install" true
    (g.Ccp_ext.cwnd_clamped > 0)

let test_report_rate_limiter () =
  let sim, _, ext, to_agent, install = guard_env () in
  let ctl, _, _ = fake_ctl sim ~flow:1 in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init ctl;
  install Scenarios.Hostile.report_spam ~flow:1;
  Sim.run ~until:(Time_ns.ms 1) sim;
  (* The program asks for a report every ~1 us; the envelope allows one
     per 10 us, so at most ~100 fit in the first millisecond. *)
  let reports =
    List.length
      (List.filter (function Ccp_ipc.Message.Report _ -> true | _ -> false) !to_agent)
  in
  Alcotest.(check bool) "reports throttled" true (reports > 0 && reports <= 110);
  let g = Option.get (Ccp_ext.guard_incidents ext ~flow:1) in
  Alcotest.(check bool) "throttling counted" true (g.Ccp_ext.report_throttled > 0)

let test_quarantine_lifecycle () =
  let config =
    {
      Ccp_ext.default_config with
      guard =
        {
          Ccp_ext.default_guard with
          quarantine_after = 5;
          quarantine_mode = Some (Ccp_ext.Clamp { cwnd_segments = 2 });
        };
    }
  in
  let sim, channel, ext, to_agent, install = guard_env ~config () in
  let ctl, cwnd, rate = fake_ctl sim ~flow:1 in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init ctl;
  install Scenarios.Hostile.zero_cwnd ~flow:1;
  (* One incident per ~5 ms loop: five loops trip the threshold. *)
  Sim.run ~until:(Time_ns.ms 100) sim;
  Alcotest.(check bool) "quarantined" true (Ccp_ext.in_quarantine ext ~flow:1);
  Alcotest.(check int) "one quarantine" 1 (Ccp_ext.quarantines_triggered ext);
  Alcotest.(check bool) "controller is the quarantine" true
    (Ccp_ext.controller ext ~flow:1 = Some Ccp_ext.Quarantined);
  Alcotest.(check bool) "offending program cancelled" true
    (Ccp_ext.installed_program ext ~flow:1 = None);
  Alcotest.(check int) "clamp window applied" (2 * 1448) !cwnd;
  Alcotest.(check (float 1e-9)) "pacing disabled" 0.0 !rate;
  (match
     List.find_opt
       (function Ccp_ipc.Message.Quarantined _ -> true | _ -> false)
       !to_agent
   with
  | Some (Ccp_ipc.Message.Quarantined q) ->
      Alcotest.(check bool) "reported incidents reach threshold" true
        (q.Ccp_ipc.Message.incidents >= 5);
      Alcotest.(check string) "dominant incident" "cwnd-clamped"
        (Ccp_ipc.Message.incident_kind_to_string q.Ccp_ipc.Message.dominant)
  | _ -> Alcotest.fail "agent never told about the quarantine");
  (* Knob commands must not release the flow. *)
  Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
    (Ccp_ipc.Message.Set_cwnd { flow = 1; bytes = 60_000 });
  Sim.run ~until:(Time_ns.ms 101) sim;
  Alcotest.(check bool) "set_cwnd ignored while quarantined" true
    (!cwnd = 2 * 1448 && Ccp_ext.in_quarantine ext ~flow:1);
  (* Neither must a re-install that fails admission. *)
  install Scenarios.Hostile.wait_too_short ~flow:1;
  Sim.run ~until:(Time_ns.ms 102) sim;
  Alcotest.(check bool) "rejected install keeps quarantine" true
    (Ccp_ext.in_quarantine ext ~flow:1);
  (* An accepted install atomically wins the flow back. *)
  install sane_program ~flow:1;
  Sim.run ~until:(Time_ns.ms 150) sim;
  Alcotest.(check bool) "quarantine lifted" false (Ccp_ext.in_quarantine ext ~flow:1);
  Alcotest.(check bool) "agent program back in control" true
    (Ccp_ext.controller ext ~flow:1 = Some Ccp_ext.Agent_program);
  Alcotest.(check int) "corrected window running" (10 * 1448) !cwnd;
  Alcotest.(check int) "still just the one quarantine" 1 (Ccp_ext.quarantines_triggered ext)

(* --- end to end through Experiment --- *)

let test_hostile_flow_end_to_end () =
  (* A hostile agent on a real dumbbell, with the one-active-controller
     invariant sampled every 100 ms: quarantine flags, fallback flags and
     the installed program must always agree with [controller]. *)
  let duration = Time_ns.sec 5 in
  let violations = ref [] in
  let base = Experiment.default_config ~rate_bps:48e6 ~base_rtt:(Time_ns.ms 20) ~duration in
  let config =
    {
      base with
      Experiment.flows =
        [
          Experiment.flow
            (Experiment.Ccp_cc (Scenarios.Hostile.attacker "zero-cwnd" Scenarios.Hostile.zero_cwnd));
        ];
      datapath =
        { Ccp_ext.default_config with guard = Scenarios.Hostile.armed_guard ~threshold:25 () };
      inspect =
        Some
          (fun { Experiment.h_sim; h_datapath; _ } ->
            let rec sample at =
              if Time_ns.compare at duration < 0 then
                ignore
                  (Sim.schedule h_sim ~at (fun () ->
                       (match Ccp_ext.controller h_datapath ~flow:0 with
                       | None -> ()
                       | Some c ->
                           let q = Ccp_ext.in_quarantine h_datapath ~flow:0 in
                           let fb = Ccp_ext.in_fallback h_datapath ~flow:0 in
                           let prog = Ccp_ext.installed_program h_datapath ~flow:0 <> None in
                           let consistent =
                             match c with
                             | Ccp_ext.Quarantined -> q && not prog
                             | Ccp_ext.Native_fallback -> fb && (not q) && not prog
                             | Ccp_ext.Agent_program -> prog && not q
                             | Ccp_ext.Awaiting_agent -> (not prog) && (not q) && not fb
                           in
                           if not consistent then
                             violations :=
                               Printf.sprintf
                                 "t=%s: controller disagrees (quarantine=%b fallback=%b program=%b)"
                                 (Time_ns.to_string at) q fb prog
                               :: !violations);
                       sample (Time_ns.add at (Time_ns.ms 100))))
            in
            sample (Time_ns.ms 100));
    }
  in
  let r = Experiment.run config in
  Alcotest.(check (list string)) "one active controller throughout" [] !violations;
  let stats = Option.get r.Experiment.agent_stats in
  Alcotest.(check int) "one quarantine" 1 stats.Experiment.quarantines;
  Alcotest.(check int) "hostile then corrected install" 2 stats.Experiment.installs_admitted;
  Alcotest.(check bool) "incidents scored" true (stats.Experiment.guard_incidents >= 25);
  List.iter
    (fun (at, v) ->
      if v < 1448.0 then
        Alcotest.failf "cwnd %.0f below the guard floor at %s" v (Time_ns.to_string at))
    (Trace.series r.Experiment.trace "cwnd.0");
  Alcotest.(check bool) "traffic kept flowing" true (r.Experiment.utilization > 0.05)

let test_unrecovered_attacker_stays_quarantined () =
  let p =
    Scenarios.Hostile.run_one ~duration:(Time_ns.sec 3) ~recover:false
      ("div-storm", Scenarios.Hostile.div_storm)
  in
  Alcotest.(check int) "quarantined once" 1 p.Scenarios.Hostile.quarantines;
  Alcotest.(check bool) "never recovered" false p.Scenarios.Hostile.recovered;
  Alcotest.(check bool) "native CC keeps the flow moving" true
    (p.Scenarios.Hostile.utilization > 0.2);
  Alcotest.(check bool) "cwnd floor held" true (p.Scenarios.Hostile.min_cwnd_seen >= 1448)

let suite =
  [
    ( "guard.admission",
      [
        Alcotest.test_case "limits reject oversized programs" `Quick test_limits_rejections;
        Alcotest.test_case "admit = typecheck + limits" `Quick test_admit_full_decision;
        Alcotest.test_case "typecheck rejects degenerate prims" `Quick
          test_typecheck_rejects_degenerate_prims;
        Alcotest.test_case "eval clamps non-finite results" `Quick test_eval_clamps_non_finite;
      ] );
    ( "guard.datapath",
      [
        Alcotest.test_case "install answered with a verdict" `Quick test_admission_answers_install;
        Alcotest.test_case "cwnd and rate clamped to the envelope" `Quick
          test_guard_clamps_cwnd_and_rate;
        Alcotest.test_case "report rate limiter" `Quick test_report_rate_limiter;
        Alcotest.test_case "quarantine and recovery lifecycle" `Quick test_quarantine_lifecycle;
      ] );
    ( "guard.e2e",
      [
        Alcotest.test_case "hostile flow: invariants and recovery" `Slow
          test_hostile_flow_end_to_end;
        Alcotest.test_case "unrecovered attacker stays quarantined" `Slow
          test_unrecovered_attacker_stays_quarantined;
      ] );
  ]
