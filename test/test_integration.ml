(* End-to-end integration tests: whole experiments through the public
   API, checking the properties the paper's evaluation depends on. Kept
   at modest link speeds so the suite stays fast. *)

open Ccp_util
open Ccp_core
open Ccp_algorithms

let base_config ?(rate_bps = 20e6) ?(rtt = Time_ns.ms 20) ?(duration = Time_ns.sec 8)
    ?(warmup = Time_ns.sec 2) () =
  let base = Experiment.default_config ~rate_bps ~base_rtt:rtt ~duration in
  { base with Experiment.warmup }

let run_one ?rate_bps ?rtt ?duration ?warmup cc =
  let config = base_config ?rate_bps ?rtt ?duration ?warmup () in
  Experiment.run { config with Experiment.flows = [ Experiment.flow cc ] }

let check_util name ~at_least (r : Experiment.result) =
  Alcotest.(check bool)
    (Printf.sprintf "%s utilization %.3f >= %.2f" name r.Experiment.utilization at_least)
    true
    (r.Experiment.utilization >= at_least)

let test_every_algorithm_fills_the_link () =
  let cases =
    [
      ("reno", Experiment.Native_cc Native_reno.create, 0.90);
      ("cubic", Experiment.Native_cc Native_cubic.create, 0.90);
      ("vegas", Experiment.Native_cc Native_vegas.create, 0.90);
      ("htcp", Experiment.Native_cc Native_htcp.create, 0.90);
      ("illinois", Experiment.Native_cc Native_illinois.create, 0.90);
      ("ccp-reno", Experiment.Ccp_cc (Ccp_reno.create ()), 0.90);
      ("ccp-cubic", Experiment.Ccp_cc (Ccp_cubic.create ()), 0.90);
      ("ccp-vegas-fold", Experiment.Ccp_cc (Ccp_vegas.create `Fold), 0.90);
      ("ccp-vegas-vector", Experiment.Ccp_cc (Ccp_vegas.create `Vector), 0.90);
      ("ccp-bbr", Experiment.Ccp_cc (Ccp_bbr.create ()), 0.85);
      ("ccp-timely", Experiment.Ccp_cc (Ccp_timely.create ()), 0.75);
      ("ccp-pcc", Experiment.Ccp_cc (Ccp_pcc.create ()), 0.75);
      ("ccp-aimd", Experiment.Ccp_cc (Ccp_aimd.create ()), 0.85);
    ]
  in
  List.iter (fun (name, cc, floor) -> check_util name ~at_least:floor (run_one cc)) cases

let test_ccp_matches_native_reno () =
  (* The paper's core claim: off-datapath control with per-RTT batching
     preserves behaviour. Utilization and median RTT must be close. *)
  let native = run_one (Experiment.Native_cc Native_reno.create) in
  let ccp = run_one (Experiment.Ccp_cc (Ccp_reno.create ())) in
  Alcotest.(check bool) "utilization within 5%" true
    (Float.abs (native.Experiment.utilization -. ccp.Experiment.utilization) < 0.05);
  let ms r = Time_ns.to_float_ms r.Experiment.median_rtt in
  Alcotest.(check bool)
    (Printf.sprintf "median RTT close (%.1f vs %.1f ms)" (ms native) (ms ccp))
    true
    (Float.abs (ms native -. ms ccp) < 8.0)

let test_vegas_fold_equals_vector () =
  (* §2.4: the two batching modes express the same algorithm. Run at a
     rate where a window holds ~86 packets so the per-packet vector cost
     is clearly visible. *)
  let fold = run_one ~rate_bps:50e6 (Experiment.Ccp_cc (Ccp_vegas.create `Fold)) in
  let vector = run_one ~rate_bps:50e6 (Experiment.Ccp_cc (Ccp_vegas.create `Vector)) in
  Alcotest.(check bool) "same utilization" true
    (Float.abs (fold.Experiment.utilization -. vector.Experiment.utilization) < 0.03);
  (* ... but the fold costs far less IPC. *)
  let bytes r = (Option.get r.Experiment.agent_stats).Experiment.ipc_bytes_to_agent in
  Alcotest.(check bool)
    (Printf.sprintf "vector sends much more data (%d vs %d)" (bytes vector) (bytes fold))
    true
    (bytes vector > 3 * bytes fold)

let test_two_flows_share_fairly () =
  let config = base_config ~duration:(Time_ns.sec 20) ~warmup:(Time_ns.sec 10) () in
  let config =
    {
      config with
      Experiment.flows =
        [
          Experiment.flow (Experiment.Native_cc Native_reno.create);
          Experiment.flow (Experiment.Native_cc Native_reno.create);
        ];
    }
  in
  let r = Experiment.run config in
  Alcotest.(check bool)
    (Printf.sprintf "jain %.3f" r.Experiment.jain_index)
    true (r.Experiment.jain_index > 0.85);
  check_util "two flows" ~at_least:0.9 r

let test_late_flow_converges () =
  let config = base_config ~duration:(Time_ns.sec 24) ~warmup:Time_ns.zero () in
  let config =
    {
      config with
      Experiment.flows =
        [
          Experiment.flow (Experiment.Ccp_cc (Ccp_reno.create ()));
          Experiment.flow ~start_at:(Time_ns.sec 8) (Experiment.Ccp_cc (Ccp_reno.create ()));
        ];
    }
  in
  let r = Experiment.run config in
  (* The latecomer must claim a substantial share by the end. *)
  let goodput i = (List.nth r.Experiment.flows i).Experiment.goodput_bps in
  Alcotest.(check bool)
    (Printf.sprintf "flow1 got %.1f%% of flow0" (100.0 *. goodput 1 /. goodput 0))
    true
    (goodput 1 > 0.2 *. goodput 0)

let test_determinism () =
  let run () =
    let r = run_one ~duration:(Time_ns.sec 4) (Experiment.Ccp_cc (Ccp_cubic.create ())) in
    ( r.Experiment.utilization,
      r.Experiment.median_rtt,
      (List.hd r.Experiment.flows).Experiment.delivered_bytes,
      r.Experiment.drops )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_seed_changes_results () =
  (* With per-packet link jitter, the seed drives packet timing, so some
     observable must differ across seeds. *)
  let with_seed seed =
    let config = base_config ~duration:(Time_ns.sec 4) () in
    let config =
      { config with
        Experiment.seed;
        jitter = Time_ns.us 500;
        flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_reno.create ())) ] }
    in
    let r = Experiment.run config in
    ( (List.hd r.Experiment.flows).Experiment.delivered_bytes,
      r.Experiment.median_rtt,
      (Option.get r.Experiment.agent_stats).Experiment.ipc_bytes_to_agent )
  in
  Alcotest.(check bool) "seeds differ" true
    (with_seed 1 <> with_seed 2 || with_seed 3 <> with_seed 1)

let test_dctcp_keeps_queue_short () =
  let rate_bps = 20e6 and rtt = Time_ns.ms 2 in
  let base = Experiment.default_config ~rate_bps ~base_rtt:rtt ~duration:(Time_ns.sec 4) in
  let config =
    {
      base with
      Experiment.warmup = Time_ns.sec 1;
      buffer_bytes = 100_000;
      ecn_threshold_bytes = Some 15_000;
      flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_dctcp.create ())) ];
    }
  in
  let r = Experiment.run config in
  check_util "dctcp" ~at_least:0.8 r;
  Alcotest.(check bool) "marks happened" true (r.Experiment.ecn_marks > 0);
  Alcotest.(check bool)
    (Printf.sprintf "few drops (%d)" r.Experiment.drops)
    true (r.Experiment.drops < 20);
  (* Median RTT stays near the base: the queue is kept at the threshold. *)
  Alcotest.(check bool)
    (Printf.sprintf "median rtt %.2fms" (Time_ns.to_float_ms r.Experiment.median_rtt))
    true
    (Time_ns.to_float_ms r.Experiment.median_rtt < 12.0)

let test_policy_cap_respected_end_to_end () =
  let config = base_config ~duration:(Time_ns.sec 10) ~warmup:(Time_ns.sec 3) () in
  let cap_bytes_per_sec = 250_000.0 (* 2 Mbit/s *) in
  let config =
    {
      config with
      Experiment.policy =
        Some
          (fun (info : Ccp_agent.Algorithm.flow_info) ->
            if info.Ccp_agent.Algorithm.flow = 0 then
              { Ccp_agent.Policy.max_rate_bps = Some cap_bytes_per_sec;
                max_cwnd_bytes = Some 10_000; min_cwnd_bytes = None }
            else Ccp_agent.Policy.unrestricted);
      flows =
        [
          Experiment.flow (Experiment.Ccp_cc (Ccp_cubic.create ()));
          Experiment.flow (Experiment.Ccp_cc (Ccp_cubic.create ()));
        ];
    }
  in
  let r = Experiment.run config in
  let goodput i = (List.nth r.Experiment.flows i).Experiment.goodput_bps in
  (* cwnd cap 10kB over 20ms RTT = 4 Mbit/s hard ceiling. *)
  Alcotest.(check bool)
    (Printf.sprintf "capped flow %.2f Mbit/s" (goodput 0 /. 1e6))
    true
    (goodput 0 < 4.5e6);
  Alcotest.(check bool) "uncapped flow takes the rest" true (goodput 1 > 10e6)

let test_urgent_disabled_degrades () =
  (* Removing the urgent path makes loss reactions a full report late;
     with a repeating loss pattern utilization collapses (DESIGN ablation,
     asserted here as a regression test). *)
  let run ~urgent =
    let config = base_config ~duration:(Time_ns.sec 8) () in
    let config =
      {
        config with
        Experiment.datapath =
          { Ccp_datapath.Ccp_ext.default_config with urgent_on_loss = urgent };
        flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_reno.create ())) ];
      }
    in
    Experiment.run config
  in
  let with_urgent = run ~urgent:true and without = run ~urgent:false in
  Alcotest.(check bool) "urgent >= no-urgent" true
    (with_urgent.Experiment.utilization >= without.Experiment.utilization);
  Alcotest.(check bool) "no-urgent drops more" true
    (without.Experiment.drops > with_urgent.Experiment.drops)

let test_fig2_percentiles_match_paper () =
  let series = Scenarios.Fig2.run ~samples:30_000 ~seed:7 () in
  List.iter
    (fun (s : Scenarios.Fig2.series) ->
      let measured = Stats.Samples.percentile s.samples 99.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s p99 %.1f vs paper %.1f" s.label measured s.paper_p99_us)
        true
        (Float.abs (measured -. s.paper_p99_us) /. s.paper_p99_us < 0.10))
    series

let test_batching_table_matches_paper_arithmetic () =
  let rows = Scenarios.Batching_load.table () in
  let row =
    List.find
      (fun (r : Scenarios.Batching_load.row) ->
        r.link_bps = 100e9 && r.rtt = Time_ns.us 10)
      rows
  in
  (* "8 million acknowledgments per second ... 100,000 batches" (§2.3). *)
  Alcotest.(check bool) "8M acks" true (Float.abs (row.acks_per_sec -. 8.33e6) < 0.2e6);
  Alcotest.(check (float 1.0)) "100k batches" 100_000.0 row.batches_per_sec

let test_agent_crash_fallback_and_recovery () =
  (* The fault-injection PR's acceptance scenario: the agent crashes at
     t=5 s and restarts at t=10 s of a 20 s run. The watchdog (silence
     threshold 4 base RTTs = 80 ms) must hand the flow to native Reno
     shortly after the crash, and the restarted agent must win it back
     via the Ready re-handshake — with goodput flowing throughout. *)
  let crash_at = Time_ns.sec 5 and restart_at = Time_ns.sec 10 in
  let base_rtt = Time_ns.ms 20 in
  let watchdog_after = Time_ns.scale base_rtt 4.0 in
  let duration = Time_ns.sec 20 in
  let base = Experiment.default_config ~rate_bps:48e6 ~base_rtt ~duration in
  let probes = ref [] in
  (* (when, in_fallback, controller) samples around the two transitions. *)
  let sample_points =
    [
      Time_ns.ms 4_900;
      (* just before the crash: agent in charge *)
      Time_ns.add crash_at (Time_ns.scale watchdog_after 3.0);
      (* within a few watchdog periods of the crash: native in charge *)
      Time_ns.sec 8;
      (* mid-outage: still native *)
      Time_ns.sec 19;
      (* well after restart: agent back in charge *)
    ]
  in
  let config =
    {
      base with
      Experiment.faults =
        Ccp_ipc.Fault_plan.(crash ~at:crash_at ~restart:restart_at none);
      flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_reno.create ())) ];
      datapath =
        {
          Ccp_datapath.Ccp_ext.default_config with
          fallback =
            Some
              (Ccp_datapath.Ccp_ext.native_fallback ~after:watchdog_after
                 Native_reno.create);
        };
      inspect =
        Some
          (fun { Experiment.h_sim; h_datapath; _ } ->
            List.iter
              (fun at ->
                ignore
                  (Ccp_eventsim.Sim.schedule h_sim ~at (fun () ->
                       probes :=
                         ( at,
                           Ccp_datapath.Ccp_ext.in_fallback h_datapath ~flow:0,
                           Ccp_datapath.Ccp_ext.controller h_datapath ~flow:0 )
                         :: !probes)))
              sample_points);
    }
  in
  let r = Experiment.run config in
  let at t =
    match List.find_opt (fun (t', _, _) -> t' = t) !probes with
    | Some (_, fb, c) -> (fb, c)
    | None -> Alcotest.failf "no probe at %s" (Time_ns.to_string t)
  in
  let open Ccp_datapath in
  let fb, c = at (Time_ns.ms 4_900) in
  Alcotest.(check bool) "agent in charge before crash" true
    ((not fb) && c = Some Ccp_ext.Agent_program);
  let fb, c = at (Time_ns.add crash_at (Time_ns.scale watchdog_after 3.0)) in
  Alcotest.(check bool) "fallback within a few watchdog periods" true
    (fb && c = Some Ccp_ext.Native_fallback);
  let fb, _ = at (Time_ns.sec 8) in
  Alcotest.(check bool) "still native mid-outage" true fb;
  let fb, c = at (Time_ns.sec 19) in
  Alcotest.(check bool) "agent resumed control after restart" true
    ((not fb) && c = Some Ccp_ext.Agent_program);
  let stats = Option.get r.Experiment.agent_stats in
  Alcotest.(check int) "exactly one fallback episode" 1 stats.Experiment.fallbacks;
  Alcotest.(check bool) "re-handshake probes were sent" true
    (stats.Experiment.fallback_probes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "goodput flowed through the outage (utilization %.2f)"
       r.Experiment.utilization)
    true
    (r.Experiment.utilization > 0.7)

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "all algorithms fill the link" `Slow
          test_every_algorithm_fills_the_link;
        Alcotest.test_case "ccp matches native (fig3/4 claim)" `Slow test_ccp_matches_native_reno;
        Alcotest.test_case "vegas fold == vector (§2.4)" `Slow test_vegas_fold_equals_vector;
        Alcotest.test_case "two-flow fairness" `Slow test_two_flows_share_fairly;
        Alcotest.test_case "late flow converges (fig4 shape)" `Slow test_late_flow_converges;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_results;
        Alcotest.test_case "dctcp short queues" `Quick test_dctcp_keeps_queue_short;
        Alcotest.test_case "policy cap end-to-end" `Slow test_policy_cap_respected_end_to_end;
        Alcotest.test_case "urgent path matters" `Slow test_urgent_disabled_degrades;
        Alcotest.test_case "fig2 percentiles" `Quick test_fig2_percentiles_match_paper;
        Alcotest.test_case "batching arithmetic (§2.3)" `Quick
          test_batching_table_matches_paper_arithmetic;
        Alcotest.test_case "agent crash: fallback and recovery" `Slow
          test_agent_crash_fallback_and_recovery;
      ] );
  ]
