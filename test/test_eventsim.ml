(* Tests for the discrete-event engine: ordering, determinism, timers. *)

open Ccp_util
open Ccp_eventsim

let test_fires_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := (tag, Sim.now sim) :: !log in
  ignore (Sim.schedule sim ~at:(Time_ns.ms 30) (note "c"));
  ignore (Sim.schedule sim ~at:(Time_ns.ms 10) (note "a"));
  ignore (Sim.schedule sim ~at:(Time_ns.ms 20) (note "b"));
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "order and clock"
    [ ("a", Time_ns.ms 10); ("b", Time_ns.ms 20); ("c", Time_ns.ms 30) ]
    (List.rev !log)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Sim.schedule sim ~at:(Time_ns.ms 5) (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo among equal times" (List.init 10 Fun.id) (List.rev !log)

let test_schedule_in_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~at:(Time_ns.ms 10) (fun () -> ()));
  Sim.run sim;
  Alcotest.(check bool) "clock advanced" true (Sim.now sim = Time_ns.ms 10);
  match Sim.schedule sim ~at:(Time_ns.ms 5) (fun () -> ()) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_schedule_after_clamps_negative () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.schedule_after sim ~delay:(-5) (fun () -> fired := true));
  Sim.run sim;
  Alcotest.(check bool) "fired at now" true !fired

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let timer = Sim.schedule sim ~at:(Time_ns.ms 1) (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Sim.is_pending timer);
  Sim.cancel timer;
  Alcotest.(check bool) "not pending" false (Sim.is_pending timer);
  Sim.run sim;
  Alcotest.(check bool) "cancelled event silent" false !fired;
  (* Double cancel is a no-op. *)
  Sim.cancel timer

let test_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Sim.schedule_after sim ~delay:(Time_ns.ms 10) tick)
  in
  ignore (Sim.schedule sim ~at:Time_ns.zero tick);
  Sim.run ~until:(Time_ns.ms 100) sim;
  (* Events at 0,10,...,100 inclusive fire: 11 of them. *)
  Alcotest.(check int) "events up to horizon" 11 !count;
  Alcotest.(check int) "clock at horizon" (Time_ns.ms 100) (Sim.now sim)

let test_max_events_guard () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec spin () =
    incr count;
    ignore (Sim.schedule_after sim ~delay:1 spin)
  in
  ignore (Sim.schedule sim ~at:Time_ns.zero spin);
  Sim.run ~max_events:500 sim;
  Alcotest.(check int) "stopped by budget" 500 !count

let test_step () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore (Sim.schedule sim ~at:(Time_ns.ms 1) (fun () -> incr fired));
  ignore (Sim.schedule sim ~at:(Time_ns.ms 2) (fun () -> incr fired));
  Alcotest.(check bool) "step 1" true (Sim.step sim);
  Alcotest.(check int) "one fired" 1 !fired;
  Alcotest.(check bool) "step 2" true (Sim.step sim);
  Alcotest.(check bool) "exhausted" false (Sim.step sim)

let test_events_scheduled_during_run () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~at:(Time_ns.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.schedule_after sim ~delay:(Time_ns.ms 1) (fun () -> log := "inner" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested event ran" [ "outer"; "inner" ] (List.rev !log)

let test_rng_access () =
  let a = Sim.create ~seed:3 () in
  let b = Sim.create ~seed:3 () in
  Alcotest.(check int64) "same seed same stream" (Rng.bits64 (Sim.rng a))
    (Rng.bits64 (Sim.rng b))

(* --- edge-case regressions (fault-injection PR) --- *)

let test_event_at_exactly_until_fires () =
  let sim = Sim.create () in
  let fired = ref false and late = ref false in
  ignore (Sim.schedule sim ~at:(Time_ns.ms 50) (fun () -> fired := true));
  ignore (Sim.schedule sim ~at:(Time_ns.ms 50 + 1) (fun () -> late := true));
  Sim.run ~until:(Time_ns.ms 50) sim;
  Alcotest.(check bool) "event at the horizon fires" true !fired;
  Alcotest.(check bool) "event one ns past does not" false !late;
  Alcotest.(check int) "clock stops at the horizon" (Time_ns.ms 50) (Sim.now sim)

let test_same_instant_fifo_mixed_apis () =
  (* schedule ~at and schedule_after landing on the same instant must
     still fire in submission order, regardless of which API queued them. *)
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore
    (Sim.schedule sim ~at:(Time_ns.ms 1) (fun () ->
         ignore (Sim.schedule sim ~at:(Time_ns.ms 5) (note "a"));
         ignore (Sim.schedule_after sim ~delay:(Time_ns.ms 4) (note "b"));
         ignore (Sim.schedule sim ~at:(Time_ns.ms 5) (note "c"));
         ignore (Sim.schedule_after sim ~delay:(Time_ns.ms 4) (note "d"))));
  Sim.run sim;
  Alcotest.(check (list string)) "submission order at equal instants"
    [ "a"; "b"; "c"; "d" ] (List.rev !log)

let test_cancel_fired_timer_noop () =
  let sim = Sim.create () in
  let count = ref 0 in
  let timer = Sim.schedule sim ~at:(Time_ns.ms 1) (fun () -> incr count) in
  Sim.run sim;
  Alcotest.(check int) "fired once" 1 !count;
  Alcotest.(check bool) "no longer pending" false (Sim.is_pending timer);
  (* Cancelling after the fact must not raise, resurrect, or affect
     anything scheduled later. *)
  Sim.cancel timer;
  Sim.cancel timer;
  ignore (Sim.schedule sim ~at:(Time_ns.ms 2) (fun () -> incr count));
  Sim.run sim;
  Alcotest.(check int) "later event unaffected" 2 !count

let suite =
  [
    ( "eventsim",
      [
        Alcotest.test_case "time ordering" `Quick test_fires_in_time_order;
        Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
        Alcotest.test_case "past scheduling rejected" `Quick test_schedule_in_past_raises;
        Alcotest.test_case "negative delay clamps" `Quick test_schedule_after_clamps_negative;
        Alcotest.test_case "cancel" `Quick test_cancel;
        Alcotest.test_case "run until horizon" `Quick test_run_until;
        Alcotest.test_case "max events guard" `Quick test_max_events_guard;
        Alcotest.test_case "single step" `Quick test_step;
        Alcotest.test_case "nested scheduling" `Quick test_events_scheduled_during_run;
        Alcotest.test_case "seeded rng" `Quick test_rng_access;
        Alcotest.test_case "event at exactly until fires" `Quick
          test_event_at_exactly_until_fires;
        Alcotest.test_case "same-instant FIFO across APIs" `Quick
          test_same_instant_fifo_mixed_apis;
        Alcotest.test_case "cancel on fired timer is no-op" `Quick
          test_cancel_fired_timer_noop;
      ] );
  ]
